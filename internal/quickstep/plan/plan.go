// Package plan defines the bound query representation produced by the SQL
// binder and executed by the database facade. A Query is a UNION ALL of
// branches; each branch carries an order-free join body (BodyRep: equi-join
// edges and residual predicates in declaration-order coordinates) with
// pushed-down single-table filters, optional anti-joins (from NOT EXISTS,
// i.e. stratified negation), optional grouped aggregation, and a final
// projection. OrderSteps linearizes a branch into concrete JoinSteps for
// whatever join order the optimizer picks; Cyclic detects the cyclic bodies
// the executor may route to the leapfrog WCOJ instead.
package plan

import (
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
)

// Query is one SELECT statement after binding: a UNION ALL of branches, all
// with the same output arity.
type Query struct {
	Branches []*Branch
	// OutCols names the output columns (taken from the first branch's
	// select-list aliases).
	OutCols []string
}

// Branch is one UNION ALL arm.
type Branch struct {
	// Tables lists the FROM items in declaration order; Offsets[i] is the
	// starting column of table i in the combined row.
	Tables  []string
	Offsets []int
	Arities []int

	// PreFilter holds single-table predicates pushed below the joins,
	// expressed over that table's own row (indices 0..arity-1).
	PreFilter map[int][]expr.Cmp

	// Body is the order-free join structure of the branch: equi-join edges
	// between table columns and multi-table residual predicates, both in
	// declaration-order coordinates. The executor compiles it into concrete
	// JoinSteps for whatever join order the optimizer picks (OrderSteps).
	Body BodyRep

	// AntiJoins are applied after all positive joins, in order.
	AntiJoins []AntiJoinStep

	// Projs is the select list over the final combined row. When Aggs is
	// non-empty, Projs is unused and GroupBy/Aggs/SelectOrder drive output.
	Projs []expr.Expr

	// GroupBy holds combined-row column indices; Aggs the aggregate specs.
	GroupBy []int
	Aggs    []exec.AggSpec
	// SelectOrder maps each select-list position to either a group column
	// (IsAgg=false, Index into GroupBy) or an aggregate (IsAgg=true, Index
	// into Aggs), so output column order follows the SQL text.
	SelectOrder []SelectOut
}

// SelectOut maps one select-list position to its source in an aggregate
// query: a GROUP BY column (IsAgg=false) or an aggregate (IsAgg=true).
type SelectOut struct {
	IsAgg bool
	Index int
}

// BodyRep is the order-free representation of a branch's join structure.
// The binder emits it instead of baking the textual FROM order into key
// offsets; OrderSteps compiles it into a concrete left-deep chain for any
// permutation of the tables.
type BodyRep struct {
	// Edges are the column-equality constraints between distinct tables
	// (the equi-join keys), in table-local coordinates.
	Edges []EquiEdge
	// Residuals are the remaining multi-table predicates, in
	// declaration-order combined coordinates.
	Residuals []ResidualPred
}

// EquiEdge equates column LCol of table LTab with column RCol of table RTab
// (table-local column indices, LTab < RTab).
type EquiEdge struct {
	LTab, LCol, RTab, RCol int
}

// ResidualPred is a non-equi (or non-column) predicate spanning several
// tables. Cmp is expressed over the declaration-order combined row; Tables
// lists the FROM indexes it reads, ascending.
type ResidualPred struct {
	Cmp    expr.Cmp
	Tables []int
}

// JoinStep describes one binary join of the running prefix with the next
// table.
type JoinStep struct {
	// Right is the FROM index (into Branch.Tables) of the table this step
	// joins onto the running prefix.
	Right int
	// LeftKeys index into the combined prefix row; RightKeys into the new
	// table's row. Empty keys produce a cross product.
	LeftKeys, RightKeys []int
	// Residual predicates over the (prefix ++ new table) combined row.
	Residual []expr.Cmp
}

// Ordered is a branch's join chain compiled for one specific table order.
type Ordered struct {
	// Order is a permutation of the FROM indexes; Order[0] is the seed.
	Order []int
	// Steps has len(Order)-1 entries; Steps[i] joins the prefix of
	// Order[0..i] with Order[i+1], with offsets resolved for this order.
	Steps []JoinStep
	// ColMap maps declaration-order combined column indices to this
	// order's combined coordinates (for projections, group-bys, anti-join
	// outer keys and any expression bound in declaration coordinates).
	ColMap []int
}

// VarClasses unions the branch's equi-edges into variable classes and
// returns, for each declaration-order combined column, its class
// representative (an arbitrary but stable column index in the class).
func (br *Branch) VarClasses() []int {
	total := 0
	for _, a := range br.Arities {
		total += a
	}
	parent := make([]int, total)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range br.Body.Edges {
		a := find(br.Offsets[e.LTab] + e.LCol)
		b := find(br.Offsets[e.RTab] + e.RCol)
		if a != b {
			parent[b] = a
		}
	}
	out := make([]int, total)
	for i := range out {
		out[i] = find(i)
	}
	return out
}

// Cyclic reports whether the branch's join graph is cyclic in the
// hypergraph sense: treating each variable class as a hyperedge over the
// tables it touches, some class reconnects tables already connected through
// other classes. A star (many atoms sharing one variable) is acyclic; a
// triangle is cyclic.
func Cyclic(br *Branch) bool {
	n := len(br.Tables)
	if n < 3 {
		return false
	}
	classes := br.VarClasses()
	tablesByClass := map[int][]int{}
	for t := 0; t < n; t++ {
		for c := 0; c < br.Arities[t]; c++ {
			k := classes[br.Offsets[t]+c]
			ts := tablesByClass[k]
			if len(ts) == 0 || ts[len(ts)-1] != t {
				tablesByClass[k] = append(ts, t)
			}
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Deterministic class iteration order keeps the (boolean) answer
	// stable; iterate columns, visiting each class once.
	seen := map[int]bool{}
	for abs := range classes {
		k := classes[abs]
		if seen[k] {
			continue
		}
		seen[k] = true
		ts := tablesByClass[k]
		for i := 1; i < len(ts); i++ {
			a, b := find(ts[0]), find(ts[i])
			if a == b {
				return true
			}
			parent[b] = a
		}
	}
	return false
}

// OrderSteps compiles the branch's body into a concrete left-deep join
// chain for the given table order. Keys are derived from variable classes
// with a "placed representative" per class: when a table is placed, each of
// its columns whose class already has a placed member equates against that
// member's position, which enforces all (including transitive) equalities
// exactly once. Residual predicates attach to the earliest step at which
// every table they read is placed.
func OrderSteps(br *Branch, order []int) Ordered {
	n := len(br.Tables)
	classes := br.VarClasses()
	total := len(classes)
	colMap := make([]int, total)
	newOff := make([]int, n)
	pos := make([]int, n)
	off := 0
	for p, t := range order {
		pos[t] = p
		newOff[t] = off
		off += br.Arities[t]
	}
	for t := 0; t < n; t++ {
		for c := 0; c < br.Arities[t]; c++ {
			colMap[br.Offsets[t]+c] = newOff[t] + c
		}
	}
	ord := Ordered{Order: order, ColMap: colMap}
	if n > 1 {
		ord.Steps = make([]JoinStep, n-1)
	}
	eq := func(a, b int) expr.Cmp {
		return expr.Cmp{Op: expr.EQ, L: expr.Col{Index: a}, R: expr.Col{Index: b}}
	}
	rep := map[int]int{} // class -> declaration-abs index of placed member
	tableOf := func(abs int) int {
		t := n - 1
		for ; t > 0 && abs < br.Offsets[t]; t-- {
		}
		return t
	}
	for p, t := range order {
		step := p - 1
		if step >= 0 {
			ord.Steps[step].Right = t
		}
		for c := 0; c < br.Arities[t]; c++ {
			abs := br.Offsets[t] + c
			k := classes[abs]
			r, ok := rep[k]
			if !ok {
				rep[k] = abs
				continue
			}
			switch {
			case step < 0:
				// Two seed columns in one class (only possible via a
				// transitive path through a later table): enforce on the
				// first join step's combined row.
				ord.Steps[0].Residual = append(ord.Steps[0].Residual, eq(colMap[r], colMap[abs]))
			case tableOf(r) == t:
				// Both ends live in the table being placed; hash keys must
				// reference the prefix, so keep it as a step residual.
				ord.Steps[step].Residual = append(ord.Steps[step].Residual, eq(colMap[r], colMap[abs]))
			default:
				ord.Steps[step].LeftKeys = append(ord.Steps[step].LeftKeys, colMap[r])
				ord.Steps[step].RightKeys = append(ord.Steps[step].RightKeys, c)
			}
		}
	}
	for _, res := range br.Body.Residuals {
		last := 0
		for _, t := range res.Tables {
			if pos[t] > last {
				last = pos[t]
			}
		}
		step := last - 1
		if step < 0 {
			step = 0
		}
		remapped := expr.RemapCmp(res.Cmp, func(i int) int { return colMap[i] })
		ord.Steps[step].Residual = append(ord.Steps[step].Residual, remapped)
	}
	return ord
}

// IdentityOrder returns the textual FROM order 0..n-1 (the ablation order).
func IdentityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// AntiJoinStep removes combined rows that have a match in Table (the bound
// form of NOT EXISTS).
type AntiJoinStep struct {
	Table string
	// OuterKeys index the combined row; InnerKeys the inner table's row.
	OuterKeys, InnerKeys []int
	// InnerPreFilter restricts the inner table before the existence check
	// (constant predicates inside the subquery).
	InnerPreFilter []expr.Cmp
}

// Statement is the bound form of any SQL statement.
type Statement interface{ stmt() }

// CreateTable creates an empty table.
type CreateTable struct {
	Name string
	Cols []string
}

// DropTable removes a table.
type DropTable struct {
	Name     string
	IfExists bool
}

// InsertValues appends literal tuples.
type InsertValues struct {
	Table  string
	Tuples [][]int32
}

// InsertSelect appends a query result (bag semantics — UNION ALL append, no
// implicit dedup, exactly as RecStep requires).
type InsertSelect struct {
	Table string
	Query *Query
}

// SelectStmt evaluates a query and returns its result relation.
type SelectStmt struct {
	Query *Query
}

func (CreateTable) stmt()  {}
func (DropTable) stmt()    {}
func (InsertValues) stmt() {}
func (InsertSelect) stmt() {}
func (SelectStmt) stmt()   {}
