package sql

import (
	"fmt"
	"sort"

	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/plan"
)

// SchemaFn resolves a table name to its column names.
type SchemaFn func(table string) ([]string, bool)

// Parse parses and binds a single SQL statement against the given schema.
func Parse(src string, schema SchemaFn) (plan.Statement, error) {
	st, err := parseStatement(src)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *astCreate:
		return plan.CreateTable{Name: s.name, Cols: s.cols}, nil
	case *astDrop:
		return plan.DropTable{Name: s.name, IfExists: s.ifExists}, nil
	case *astInsert:
		if s.sel == nil {
			return plan.InsertValues{Table: s.table, Tuples: s.tuples}, nil
		}
		q, err := bindQuery(s.sel, schema)
		if err != nil {
			return nil, err
		}
		return plan.InsertSelect{Table: s.table, Query: q}, nil
	case *astSelect:
		q, err := bindQuery(s, schema)
		if err != nil {
			return nil, err
		}
		return plan.SelectStmt{Query: q}, nil
	}
	return nil, fmt.Errorf("sql: unhandled statement type %T", st)
}

// SplitScript splits a multi-statement script on semicolons, dropping blank
// segments. Binding happens per statement so earlier DDL is visible to later
// statements.
func SplitScript(src string) []string {
	return splitStatements(src)
}

func bindQuery(sel *astSelect, schema SchemaFn) (*plan.Query, error) {
	q := &plan.Query{}
	for s := sel; s != nil; s = s.union {
		br, outCols, err := bindBranch(s, schema)
		if err != nil {
			return nil, err
		}
		if len(q.Branches) == 0 {
			q.OutCols = outCols
		} else if branchArity(q.Branches[0]) != branchArity(br) {
			return nil, fmt.Errorf("sql: UNION ALL branches have different arities (%d vs %d)",
				branchArity(q.Branches[0]), branchArity(br))
		}
		q.Branches = append(q.Branches, br)
	}
	return q, nil
}

func branchArity(b *plan.Branch) int {
	if len(b.Aggs) > 0 {
		return len(b.SelectOrder)
	}
	return len(b.Projs)
}

// binder carries the alias context of one SELECT branch.
type binder struct {
	schema  SchemaFn
	aliases []astFrom
	cols    [][]string
	offsets []int
	byName  map[string]int
}

func newBinder(schema SchemaFn, from []astFrom) (*binder, error) {
	b := &binder{schema: schema, byName: make(map[string]int)}
	off := 0
	for _, f := range from {
		cols, ok := schema(f.table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", f.table)
		}
		if _, dup := b.byName[f.alias]; dup {
			return nil, fmt.Errorf("sql: duplicate alias %q", f.alias)
		}
		b.byName[f.alias] = len(b.aliases)
		b.aliases = append(b.aliases, f)
		b.cols = append(b.cols, cols)
		b.offsets = append(b.offsets, off)
		off += len(cols)
	}
	return b, nil
}

func (b *binder) width() int {
	last := len(b.aliases) - 1
	return b.offsets[last] + len(b.cols[last])
}

// tableOf maps an absolute column index back to its FROM table index.
func (b *binder) tableOf(abs int) int {
	for i := len(b.offsets) - 1; i >= 0; i-- {
		if abs >= b.offsets[i] {
			return i
		}
	}
	return 0
}

func (b *binder) resolveCol(c *astCol) (int, error) {
	if c.tbl != "" {
		ti, ok := b.byName[c.tbl]
		if !ok {
			return 0, fmt.Errorf("sql: unknown alias %q", c.tbl)
		}
		for j, name := range b.cols[ti] {
			if name == c.col {
				return b.offsets[ti] + j, nil
			}
		}
		return 0, fmt.Errorf("sql: table %q has no column %q", c.tbl, c.col)
	}
	found := -1
	for ti, cols := range b.cols {
		for j, name := range cols {
			if name == c.col {
				if found >= 0 {
					return 0, fmt.Errorf("sql: ambiguous column %q", c.col)
				}
				found = b.offsets[ti] + j
			}
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", c.col)
	}
	return found, nil
}

// bindExpr converts an AST expression (no aggregates) to an executable one.
func (b *binder) bindExpr(e astExpr) (expr.Expr, error) {
	switch v := e.(type) {
	case *astInt:
		return expr.Lit{Value: v.v}, nil
	case *astCol:
		idx, err := b.resolveCol(v)
		if err != nil {
			return nil, err
		}
		name := v.col
		if v.tbl != "" {
			name = v.tbl + "." + v.col
		}
		return expr.Col{Index: idx, Name: name}, nil
	case *astBin:
		l, err := b.bindExpr(v.l)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(v.r)
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: v.op, L: l, R: r}, nil
	case *astAgg:
		return nil, fmt.Errorf("sql: aggregate not allowed here")
	}
	return nil, fmt.Errorf("sql: unhandled expression %T", e)
}

// tablesIn returns the set of FROM tables an expression touches.
func (b *binder) tablesIn(e expr.Expr) map[int]bool {
	out := make(map[int]bool)
	for _, c := range expr.Columns(e) {
		out[b.tableOf(c)] = true
	}
	return out
}

func bindBranch(s *astSelect, schema SchemaFn) (*plan.Branch, []string, error) {
	b, err := newBinder(schema, s.from)
	if err != nil {
		return nil, nil, err
	}
	br := &plan.Branch{
		PreFilter: make(map[int][]expr.Cmp),
	}
	for i, f := range s.from {
		br.Tables = append(br.Tables, f.table)
		br.Offsets = append(br.Offsets, b.offsets[i])
		br.Arities = append(br.Arities, len(b.cols[i]))
	}

	// Classify WHERE predicates.
	for _, p := range s.where {
		switch v := p.(type) {
		case *astCmp:
			if err := classifyCmp(b, br, v); err != nil {
				return nil, nil, err
			}
		case *astNotExists:
			aj, err := bindNotExists(b, v, schema)
			if err != nil {
				return nil, nil, err
			}
			br.AntiJoins = append(br.AntiJoins, aj)
		default:
			return nil, nil, fmt.Errorf("sql: unhandled predicate %T", p)
		}
	}

	// Select list: aggregate or plain.
	hasAgg := false
	for _, it := range s.items {
		if _, ok := it.e.(*astAgg); ok {
			hasAgg = true
			break
		}
	}
	var outCols []string
	if hasAgg {
		outCols, err = bindAggregates(b, br, s)
	} else {
		if len(s.groupBy) > 0 {
			return nil, nil, fmt.Errorf("sql: GROUP BY without aggregates is not supported")
		}
		outCols, err = bindPlainProjs(b, br, s)
	}
	if err != nil {
		return nil, nil, err
	}
	return br, outCols, nil
}

func classifyCmp(b *binder, br *plan.Branch, v *astCmp) error {
	l, err := b.bindExpr(v.l)
	if err != nil {
		return err
	}
	r, err := b.bindExpr(v.r)
	if err != nil {
		return err
	}
	cmp := expr.Cmp{Op: v.op, L: l, R: r}
	tabs := b.tablesIn(l)
	for t := range b.tablesIn(r) {
		tabs[t] = true
	}
	switch len(tabs) {
	case 0:
		// Constant predicate: attach to the first table's prefilter.
		br.PreFilter[0] = append(br.PreFilter[0], cmp)
		return nil
	case 1:
		var t int
		for k := range tabs {
			t = k
		}
		br.PreFilter[t] = append(br.PreFilter[t], expr.ShiftCmp(cmp, -b.offsets[t]))
		return nil
	}
	// Equi-join edge: bare column = bare column across two distinct tables.
	// Everything else multi-table becomes an order-free residual; the
	// executor attaches it to the earliest step covering its tables.
	lc, lok := l.(expr.Col)
	rc, rok := r.(expr.Col)
	if v.op == expr.EQ && lok && rok {
		lt, rt := b.tableOf(lc.Index), b.tableOf(rc.Index)
		if lt != rt {
			e := plan.EquiEdge{
				LTab: lt, LCol: lc.Index - b.offsets[lt],
				RTab: rt, RCol: rc.Index - b.offsets[rt],
			}
			if e.LTab > e.RTab {
				e.LTab, e.LCol, e.RTab, e.RCol = e.RTab, e.RCol, e.LTab, e.LCol
			}
			br.Body.Edges = append(br.Body.Edges, e)
			return nil
		}
	}
	tlist := make([]int, 0, len(tabs))
	for t := range tabs {
		tlist = append(tlist, t)
	}
	sort.Ints(tlist)
	br.Body.Residuals = append(br.Body.Residuals, plan.ResidualPred{Cmp: cmp, Tables: tlist})
	return nil
}

// bindNotExists binds NOT EXISTS (SELECT … FROM inner WHERE corr) to an
// anti-join step. Only conjunctions of simple comparisons are supported; the
// correlated ones must be equalities between an inner column and an outer
// column.
func bindNotExists(outer *binder, ne *astNotExists, schema SchemaFn) (plan.AntiJoinStep, error) {
	sub := ne.sel
	if len(sub.from) != 1 {
		return plan.AntiJoinStep{}, fmt.Errorf("sql: NOT EXISTS supports exactly one inner table, got %d", len(sub.from))
	}
	if sub.union != nil || len(sub.groupBy) != 0 {
		return plan.AntiJoinStep{}, fmt.Errorf("sql: NOT EXISTS subquery must be a simple SELECT")
	}
	inner := sub.from[0]
	// Extended binder: outer aliases plus the inner alias.
	extFrom := append(append([]astFrom(nil), outer.aliases...), inner)
	eb, err := newBinder(schema, extFrom)
	if err != nil {
		return plan.AntiJoinStep{}, err
	}
	innerIdx := len(extFrom) - 1
	innerOff := eb.offsets[innerIdx]
	aj := plan.AntiJoinStep{Table: inner.table}
	for _, p := range sub.where {
		v, ok := p.(*astCmp)
		if !ok {
			return plan.AntiJoinStep{}, fmt.Errorf("sql: NOT EXISTS supports only simple comparisons")
		}
		l, err := eb.bindExpr(v.l)
		if err != nil {
			return plan.AntiJoinStep{}, err
		}
		r, err := eb.bindExpr(v.r)
		if err != nil {
			return plan.AntiJoinStep{}, err
		}
		touchesInner, touchesOuter := false, false
		for _, e := range []expr.Expr{l, r} {
			for _, c := range expr.Columns(e) {
				if c >= innerOff {
					touchesInner = true
				} else {
					touchesOuter = true
				}
			}
		}
		switch {
		case touchesInner && !touchesOuter:
			// Inner-only predicate (including inner column vs constant).
			aj.InnerPreFilter = append(aj.InnerPreFilter, expr.ShiftCmp(expr.Cmp{Op: v.op, L: l, R: r}, -innerOff))
		case touchesInner && touchesOuter:
			if v.op != expr.EQ {
				return plan.AntiJoinStep{}, fmt.Errorf("sql: correlated NOT EXISTS predicate must be an equality")
			}
			ic, iok := l.(expr.Col)
			oc, ook := r.(expr.Col)
			if iok && ook && ic.Index < innerOff {
				ic, oc = oc, ic
			}
			if !iok || !ook || ic.Index < innerOff || oc.Index >= innerOff {
				return plan.AntiJoinStep{}, fmt.Errorf("sql: correlated NOT EXISTS predicate must compare an inner column with an outer column")
			}
			aj.OuterKeys = append(aj.OuterKeys, oc.Index)
			aj.InnerKeys = append(aj.InnerKeys, ic.Index-innerOff)
		case touchesOuter:
			return plan.AntiJoinStep{}, fmt.Errorf("sql: NOT EXISTS predicate over outer tables only is not supported")
		default:
			// Pure constant predicate: harmless inner prefilter.
			aj.InnerPreFilter = append(aj.InnerPreFilter, expr.Cmp{Op: v.op, L: l, R: r})
		}
	}
	if len(aj.OuterKeys) == 0 {
		return plan.AntiJoinStep{}, fmt.Errorf("sql: NOT EXISTS requires at least one correlated equality")
	}
	return aj, nil
}

func bindPlainProjs(b *binder, br *plan.Branch, s *astSelect) ([]string, error) {
	var outCols []string
	for i, it := range s.items {
		if it.star {
			if len(s.items) != 1 {
				return nil, fmt.Errorf("sql: SELECT * cannot be mixed with other items")
			}
			for ti, cols := range b.cols {
				for j, name := range cols {
					br.Projs = append(br.Projs, expr.Col{Index: b.offsets[ti] + j, Name: name})
					outCols = append(outCols, name)
				}
			}
			return dedupNames(outCols), nil
		}
		e, err := b.bindExpr(it.e)
		if err != nil {
			return nil, err
		}
		br.Projs = append(br.Projs, e)
		outCols = append(outCols, itemName(it, e, i))
	}
	return dedupNames(outCols), nil
}

func bindAggregates(b *binder, br *plan.Branch, s *astSelect) ([]string, error) {
	// Bind GROUP BY columns first so select items can reference positions.
	for _, g := range s.groupBy {
		idx, err := b.resolveCol(&g)
		if err != nil {
			return nil, err
		}
		br.GroupBy = append(br.GroupBy, idx)
	}
	var outCols []string
	for i, it := range s.items {
		if it.star {
			return nil, fmt.Errorf("sql: SELECT * not allowed with aggregates")
		}
		if ag, ok := it.e.(*astAgg); ok {
			var arg expr.Expr = expr.Lit{Value: 1}
			if !ag.star {
				bound, err := b.bindExpr(ag.arg)
				if err != nil {
					return nil, err
				}
				arg = bound
			} else if ag.fn != exec.AggCount {
				return nil, fmt.Errorf("sql: %v(*) is not supported", ag.fn)
			}
			br.SelectOrder = append(br.SelectOrder, plan.SelectOut{IsAgg: true, Index: len(br.Aggs)})
			br.Aggs = append(br.Aggs, exec.AggSpec{Func: ag.fn, Arg: arg})
			outCols = append(outCols, itemName(it, nil, i))
			continue
		}
		c, ok := it.e.(*astCol)
		if !ok {
			return nil, fmt.Errorf("sql: non-aggregate select item must be a plain grouped column")
		}
		idx, err := b.resolveCol(c)
		if err != nil {
			return nil, err
		}
		pos := -1
		for gi, g := range br.GroupBy {
			if g == idx {
				pos = gi
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("sql: column %q is not in GROUP BY", c.col)
		}
		br.SelectOrder = append(br.SelectOrder, plan.SelectOut{IsAgg: false, Index: pos})
		outCols = append(outCols, itemName(it, expr.Col{Name: c.col}, i))
	}
	if len(br.Aggs) == 0 {
		return nil, fmt.Errorf("sql: GROUP BY without aggregates is not supported")
	}
	return dedupNames(outCols), nil
}

func itemName(it astItem, bound expr.Expr, pos int) string {
	if it.alias != "" {
		return it.alias
	}
	if c, ok := bound.(expr.Col); ok && c.Name != "" {
		// Use the bare column name (strip any alias qualifier).
		name := c.Name
		for i := len(name) - 1; i >= 0; i-- {
			if name[i] == '.' {
				return name[i+1:]
			}
		}
		return name
	}
	return fmt.Sprintf("c%d", pos)
}

// dedupNames renames duplicate output columns (a_1, a_2, …) so result
// relations always have distinct column names.
func dedupNames(names []string) []string {
	seen := make(map[string]int)
	out := make([]string, len(names))
	for i, n := range names {
		if c, ok := seen[n]; ok {
			seen[n] = c + 1
			out[i] = fmt.Sprintf("%s_%d", n, c)
		} else {
			seen[n] = 1
			out[i] = n
		}
	}
	return out
}
