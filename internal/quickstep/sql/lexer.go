// Package sql implements the SQL subset RecStep's query generator emits:
// CREATE TABLE, DROP TABLE, INSERT INTO … VALUES / SELECT, and SELECT with
// inner equi-joins, WHERE conjunctions, NOT EXISTS (stratified negation),
// GROUP BY aggregation (MIN/MAX/SUM/COUNT/AVG) and UNION ALL (the UIE form).
// Statements are parsed to an AST and bound against the catalog into
// plan.Statement values executed by the database facade.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokSymbol // ( ) , . ; + - * = and two-char <> <= >= plus < >
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "AS": true,
	"GROUP": true, "BY": true, "UNION": true, "ALL": true, "INSERT": true,
	"INTO": true, "VALUES": true, "CREATE": true, "TABLE": true, "DROP": true,
	"IF": true, "EXISTS": true, "NOT": true, "INT": true,
	"MIN": true, "MAX": true, "SUM": true, "COUNT": true, "AVG": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isDigit(c):
			l.lexInt()
		case c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexInt()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) lexInt() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokInt, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	switch c {
	case '(', ')', ',', '.', ';', '+', '-', '*', '=', '<', '>':
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", rune(c), l.pos)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }
