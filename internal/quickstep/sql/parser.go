package sql

import (
	"fmt"
	"strconv"

	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
)

// Unbound AST, produced by the parser and consumed by the binder.

type astExpr interface{}

type astCol struct{ tbl, col string }
type astInt struct{ v int32 }
type astBin struct {
	op   expr.ArithOp
	l, r astExpr
}
type astAgg struct {
	fn   exec.AggFunc
	arg  astExpr // nil for COUNT(*)
	star bool
}

type astCmp struct {
	op   expr.CmpOp
	l, r astExpr
}
type astNotExists struct{ sel *astSelect }

type astPred interface{}

type astItem struct {
	e     astExpr
	alias string
	star  bool
}

type astFrom struct{ table, alias string }

type astSelect struct {
	items   []astItem
	from    []astFrom
	where   []astPred
	groupBy []astCol
	union   *astSelect
}

type astCreate struct {
	name string
	cols []string
}
type astDrop struct {
	name     string
	ifExists bool
}
type astInsert struct {
	table  string
	tuples [][]int32
	sel    *astSelect
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind == kind && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("sql: expected %q at offset %d, found %q", text, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier at offset %d, found %q", t.pos, t.text)
	}
	p.i++
	return t.text, nil
}

// parseStatement parses exactly one statement (with optional trailing ';').
func parseStatement(src string) (any, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at offset %d: %q", p.cur().pos, p.cur().text)
	}
	return st, nil
}

// splitStatements splits a script on top-level semicolons.
func splitStatements(src string) []string {
	var out []string
	start := 0
	for i := 0; i < len(src); i++ {
		if src[i] == ';' {
			out = append(out, src[start:i])
			start = i + 1
		}
	}
	if tail := src[start:]; nonBlank(tail) {
		out = append(out, tail)
	}
	return out
}

func nonBlank(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return true
		}
	}
	return false
}

func (p *parser) statement() (any, error) {
	switch {
	case p.accept(tokKeyword, "CREATE"):
		return p.create()
	case p.accept(tokKeyword, "DROP"):
		return p.drop()
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.cur().kind == tokKeyword && p.cur().text == "SELECT":
		return p.selectStmt()
	}
	return nil, fmt.Errorf("sql: unknown statement start %q at offset %d", p.cur().text, p.cur().pos)
}

func (p *parser) create() (any, error) {
	if err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "INT"); err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &astCreate{name: name, cols: cols}, nil
}

func (p *parser) drop() (any, error) {
	if err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.accept(tokKeyword, "IF") {
		if err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &astDrop{name: name, ifExists: ifExists}, nil
}

func (p *parser) insert() (any, error) {
	if err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "VALUES") {
		var tuples [][]int32
		for {
			if err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			var tup []int32
			for {
				t := p.cur()
				neg := false
				if t.kind == tokSymbol && t.text == "-" {
					p.i++
					t = p.cur()
					neg = true
				}
				if t.kind != tokInt {
					return nil, fmt.Errorf("sql: expected integer in VALUES at offset %d", t.pos)
				}
				p.i++
				v, err := strconv.ParseInt(t.text, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("sql: bad integer %q: %v", t.text, err)
				}
				if neg {
					v = -v
				}
				tup = append(tup, int32(v))
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			tuples = append(tuples, tup)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		return &astInsert{table: table, tuples: tuples}, nil
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &astInsert{table: table, sel: sel}, nil
}

func (p *parser) selectStmt() (*astSelect, error) {
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &astSelect{}
	// Select list.
	if p.accept(tokSymbol, "*") {
		s.items = append(s.items, astItem{star: true})
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := astItem{e: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.alias = a
			}
			s.items = append(s.items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		f := astFrom{table: tbl, alias: tbl}
		if p.accept(tokKeyword, "AS") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			f.alias = a
		} else if p.cur().kind == tokIdent {
			f.alias = p.next().text
		}
		s.from = append(s.from, f)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			s.where = append(s.where, pred)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			s.groupBy = append(s.groupBy, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "UNION") {
		if err := p.expect(tokKeyword, "ALL"); err != nil {
			return nil, err
		}
		u, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.union = u
	}
	return s, nil
}

func (p *parser) predicate() (astPred, error) {
	if p.accept(tokKeyword, "NOT") {
		if err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &astNotExists{sel: sel}, nil
	}
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op expr.CmpOp
	switch t.text {
	case "=":
		op = expr.EQ
	case "<>":
		op = expr.NE
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	default:
		return nil, fmt.Errorf("sql: expected comparison operator at offset %d, found %q", t.pos, t.text)
	}
	p.i++
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &astCmp{op: op, l: l, r: r}, nil
}

func (p *parser) colRef() (astCol, error) {
	name, err := p.ident()
	if err != nil {
		return astCol{}, err
	}
	if p.accept(tokSymbol, ".") {
		col, err := p.ident()
		if err != nil {
			return astCol{}, err
		}
		return astCol{tbl: name, col: col}, nil
	}
	return astCol{col: name}, nil
}

// expr := term (('+'|'-') term)*
func (p *parser) expr() (astExpr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = &astBin{op: expr.Add, l: l, r: r}
		case p.cur().kind == tokSymbol && p.cur().text == "-" && p.peekIsTermStart():
			p.i++
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = &astBin{op: expr.Sub, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) peekIsTermStart() bool {
	if p.i+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+1]
	return t.kind == tokInt || t.kind == tokIdent || (t.kind == tokSymbol && t.text == "(") ||
		(t.kind == tokKeyword && isAggKeyword(t.text))
}

// term := factor ('*' factor)*
func (p *parser) term() (astExpr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.accept(tokSymbol, "*") {
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &astBin{op: expr.Mul, l: l, r: r}
	}
	return l, nil
}

func isAggKeyword(s string) bool {
	switch s {
	case "MIN", "MAX", "SUM", "COUNT", "AVG":
		return true
	}
	return false
}

func aggFunc(s string) exec.AggFunc {
	switch s {
	case "MIN":
		return exec.AggMin
	case "MAX":
		return exec.AggMax
	case "SUM":
		return exec.AggSum
	case "COUNT":
		return exec.AggCount
	case "AVG":
		return exec.AggAvg
	}
	panic("sql: not an aggregate keyword: " + s)
}

func (p *parser) factor() (astExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.i++
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q: %v", t.text, err)
		}
		return &astInt{v: int32(v)}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.i++
		inner, err := p.factor()
		if err != nil {
			return nil, err
		}
		if iv, ok := inner.(*astInt); ok {
			return &astInt{v: -iv.v}, nil
		}
		return &astBin{op: expr.Sub, l: &astInt{v: 0}, r: inner}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && isAggKeyword(t.text):
		p.i++
		fn := aggFunc(t.text)
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if p.accept(tokSymbol, "*") {
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return &astAgg{fn: fn, star: true}, nil
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &astAgg{fn: fn, arg: arg}, nil
	case t.kind == tokIdent:
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		return &c, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q at offset %d", t.text, t.pos)
}
