package sql

import (
	"strings"
	"testing"

	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/plan"
)

var testSchema = func(table string) ([]string, bool) {
	switch table {
	case "arc":
		return []string{"x", "y"}, true
	case "warc":
		return []string{"x", "y", "d"}, true
	case "tc", "tc_delta", "node_pairs":
		return []string{"x", "y"}, true
	case "id", "node":
		return []string{"x"}, true
	}
	return nil, false
}

func mustSelect(t *testing.T, q string) *plan.Query {
	t.Helper()
	st, err := Parse(q, testSchema)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	sel, ok := st.(plan.SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want SelectStmt", q, st)
	}
	return sel.Query
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE foo (x INT, y INT)", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(plan.CreateTable)
	if ct.Name != "foo" || len(ct.Cols) != 2 || ct.Cols[0] != "x" || ct.Cols[1] != "y" {
		t.Fatalf("bad create: %+v", ct)
	}
}

func TestParseDrop(t *testing.T) {
	st, err := Parse("DROP TABLE IF EXISTS foo;", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	d := st.(plan.DropTable)
	if d.Name != "foo" || !d.IfExists {
		t.Fatalf("bad drop: %+v", d)
	}
	st, err = Parse("DROP TABLE bar", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.(plan.DropTable); d.IfExists {
		t.Fatal("IfExists should be false")
	}
}

func TestParseInsertValues(t *testing.T) {
	st, err := Parse("INSERT INTO arc VALUES (1, 2), (-3, 4)", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	iv := st.(plan.InsertValues)
	if iv.Table != "arc" || len(iv.Tuples) != 2 {
		t.Fatalf("bad insert: %+v", iv)
	}
	if iv.Tuples[1][0] != -3 {
		t.Fatalf("negative literal parsed as %d", iv.Tuples[1][0])
	}
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustSelect(t, "SELECT a.x AS x, a.y AS y FROM arc AS a")
	if len(q.Branches) != 1 {
		t.Fatalf("branches = %d", len(q.Branches))
	}
	b := q.Branches[0]
	if len(b.Tables) != 1 || b.Tables[0] != "arc" || len(b.Projs) != 2 {
		t.Fatalf("bad branch: %+v", b)
	}
	if q.OutCols[0] != "x" || q.OutCols[1] != "y" {
		t.Fatalf("OutCols = %v", q.OutCols)
	}
}

func TestParseJoinWithKeys(t *testing.T) {
	q := mustSelect(t, "SELECT t.x AS x, a.y AS y FROM tc_delta AS t, arc AS a WHERE t.y = a.x")
	b := q.Branches[0]
	if len(b.Body.Edges) != 1 {
		t.Fatalf("edges = %d", len(b.Body.Edges))
	}
	e := b.Body.Edges[0]
	if e != (plan.EquiEdge{LTab: 0, LCol: 1, RTab: 1, RCol: 0}) {
		t.Fatalf("edge = %+v", e)
	}
	if len(b.Body.Residuals) != 0 {
		t.Fatalf("unexpected residuals: %v", b.Body.Residuals)
	}
	// Compiled for the textual order, the edge becomes step-0 hash keys.
	j := plan.OrderSteps(b, plan.IdentityOrder(2)).Steps[0]
	if len(j.LeftKeys) != 1 || j.LeftKeys[0] != 1 || j.RightKeys[0] != 0 {
		t.Fatalf("join keys = %v/%v", j.LeftKeys, j.RightKeys)
	}
	if len(j.Residual) != 0 {
		t.Fatalf("unexpected residual: %v", j.Residual)
	}
}

func TestParseJoinKeyOrderIrrelevant(t *testing.T) {
	// a.x = t.y (reversed) must produce the same edge.
	q := mustSelect(t, "SELECT t.x AS x, a.y AS y FROM tc_delta AS t, arc AS a WHERE a.x = t.y")
	e := q.Branches[0].Body.Edges[0]
	if e != (plan.EquiEdge{LTab: 0, LCol: 1, RTab: 1, RCol: 0}) {
		t.Fatalf("edge = %+v", e)
	}
}

func TestParseSingleTablePredicatePushdown(t *testing.T) {
	q := mustSelect(t, "SELECT a.x AS x FROM arc AS a, node AS n WHERE a.x = n.x AND a.y > 5")
	b := q.Branches[0]
	if len(b.PreFilter[0]) != 1 {
		t.Fatalf("prefilter on table 0 = %v", b.PreFilter[0])
	}
	if got := b.PreFilter[0][0].String(); !strings.Contains(got, ">") {
		t.Fatalf("prefilter = %q", got)
	}
}

func TestParseResidualPredicate(t *testing.T) {
	q := mustSelect(t, "SELECT a.y AS a, b.y AS b FROM arc AS a, arc AS b WHERE a.x = b.x AND a.y <> b.y")
	b := q.Branches[0]
	if len(b.Body.Residuals) != 1 {
		t.Fatalf("residuals = %v", b.Body.Residuals)
	}
	res := b.Body.Residuals[0]
	if res.Cmp.Op != expr.NE {
		t.Fatalf("residual op = %v", res.Cmp.Op)
	}
	if len(res.Tables) != 2 || res.Tables[0] != 0 || res.Tables[1] != 1 {
		t.Fatalf("residual tables = %v", res.Tables)
	}
	j := plan.OrderSteps(b, plan.IdentityOrder(2)).Steps[0]
	if len(j.Residual) != 1 || j.Residual[0].Op != expr.NE {
		t.Fatalf("compiled residual = %v", j.Residual)
	}
}

func TestParseUnionAll(t *testing.T) {
	q := mustSelect(t, `SELECT x, y FROM arc UNION ALL SELECT a.y AS y, a.x AS x FROM arc AS a`)
	if len(q.Branches) != 2 {
		t.Fatalf("branches = %d", len(q.Branches))
	}
}

func TestParseUnionArityMismatch(t *testing.T) {
	_, err := Parse("SELECT x, y FROM arc UNION ALL SELECT x FROM node", testSchema)
	if err == nil {
		t.Fatal("expected arity mismatch error")
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustSelect(t, "SELECT x, COUNT(y) AS cnt, MIN(y) AS mn FROM arc GROUP BY x")
	b := q.Branches[0]
	if len(b.GroupBy) != 1 || b.GroupBy[0] != 0 {
		t.Fatalf("GroupBy = %v", b.GroupBy)
	}
	if len(b.Aggs) != 2 || b.Aggs[0].Func != exec.AggCount || b.Aggs[1].Func != exec.AggMin {
		t.Fatalf("Aggs = %+v", b.Aggs)
	}
	if len(b.SelectOrder) != 3 || b.SelectOrder[0].IsAgg || !b.SelectOrder[1].IsAgg {
		t.Fatalf("SelectOrder = %+v", b.SelectOrder)
	}
}

func TestParseAggregateArithmeticArg(t *testing.T) {
	q := mustSelect(t, "SELECT w.y AS y, MIN(w.d + 1) AS d FROM warc AS w GROUP BY w.y")
	b := q.Branches[0]
	if len(b.Aggs) != 1 {
		t.Fatalf("Aggs = %+v", b.Aggs)
	}
	if _, ok := b.Aggs[0].Arg.(expr.Arith); !ok {
		t.Fatalf("agg arg = %T, want Arith", b.Aggs[0].Arg)
	}
}

func TestParseCountStar(t *testing.T) {
	q := mustSelect(t, "SELECT x, COUNT(*) AS c FROM arc GROUP BY x")
	if q.Branches[0].Aggs[0].Func != exec.AggCount {
		t.Fatal("COUNT(*) should bind to AggCount")
	}
}

func TestParseNotExists(t *testing.T) {
	q := mustSelect(t, `SELECT n.x AS x, m.x AS y FROM node AS n, node AS m
		WHERE NOT EXISTS (SELECT * FROM tc AS t WHERE t.x = n.x AND t.y = m.x)`)
	b := q.Branches[0]
	if len(b.AntiJoins) != 1 {
		t.Fatalf("AntiJoins = %+v", b.AntiJoins)
	}
	aj := b.AntiJoins[0]
	if aj.Table != "tc" || len(aj.OuterKeys) != 2 || aj.OuterKeys[0] != 0 || aj.OuterKeys[1] != 1 {
		t.Fatalf("anti join = %+v", aj)
	}
	if aj.InnerKeys[0] != 0 || aj.InnerKeys[1] != 1 {
		t.Fatalf("inner keys = %v", aj.InnerKeys)
	}
}

func TestParseNotExistsInnerConstant(t *testing.T) {
	q := mustSelect(t, `SELECT n.x AS x FROM node AS n
		WHERE NOT EXISTS (SELECT * FROM arc AS a WHERE a.x = n.x AND a.y > 3)`)
	aj := q.Branches[0].AntiJoins[0]
	if len(aj.InnerPreFilter) != 1 {
		t.Fatalf("InnerPreFilter = %v", aj.InnerPreFilter)
	}
}

func TestParseNotExistsErrors(t *testing.T) {
	bad := []string{
		"SELECT n.x AS x FROM node AS n WHERE NOT EXISTS (SELECT * FROM tc AS t, arc AS a WHERE t.x = n.x)",
		"SELECT n.x AS x FROM node AS n WHERE NOT EXISTS (SELECT * FROM tc AS t WHERE t.x > n.x)",
		"SELECT n.x AS x FROM node AS n WHERE NOT EXISTS (SELECT * FROM tc AS t WHERE t.x = 1)",
	}
	for _, q := range bad {
		if _, err := Parse(q, testSchema); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestParseSelectStar(t *testing.T) {
	q := mustSelect(t, "SELECT * FROM warc")
	if got := len(q.Branches[0].Projs); got != 3 {
		t.Fatalf("projs = %d, want 3", got)
	}
}

func TestParseArithmeticProjection(t *testing.T) {
	q := mustSelect(t, "SELECT w.x + w.d * 2 AS v FROM warc AS w")
	e, ok := q.Branches[0].Projs[0].(expr.Arith)
	if !ok || e.Op != expr.Add {
		t.Fatalf("proj = %#v, want Add at top (precedence)", q.Branches[0].Projs[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC x FROM arc",
		"SELECT x FROM missing",
		"SELECT missing FROM arc",
		"SELECT a.z AS z FROM arc AS a",
		"SELECT x FROM arc AS a, arc AS a",
		"SELECT x FROM arc WHERE x ~ 1",
		"SELECT x, y FROM arc GROUP BY x",
		"SELECT MIN(y) AS m, x FROM arc",
		"INSERT INTO arc VALUES (1, )",
		"SELECT x FROM arc extra garbage",
		"SELECT x FROM arc; SELECT y FROM arc",
	}
	for _, q := range bad {
		if _, err := Parse(q, testSchema); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestParseAmbiguousColumn(t *testing.T) {
	_, err := Parse("SELECT x FROM arc AS a, arc AS b WHERE a.x = b.x", testSchema)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
}

func TestSplitScript(t *testing.T) {
	parts := SplitScript("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);\n  \nSELECT x FROM a")
	if len(parts) != 3 {
		t.Fatalf("SplitScript = %d parts: %q", len(parts), parts)
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	q := mustSelect(t, "select x, y from arc -- trailing comment\nwhere x = 1")
	if len(q.Branches[0].PreFilter[0]) != 1 {
		t.Fatal("lower-case keywords or comments broke parsing")
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("expected lexer error for @")
	}
}
