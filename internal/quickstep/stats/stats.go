// Package stats implements table statistics and the ANALYZE call that
// RecStep's Optimization-On-the-Fly (OOF) relies on. The engine explicitly
// tells the backend which statistics to refresh and when (Algorithm 1,
// analyze()): re-optimizing every iteration with *full* statistics is too
// expensive, and never refreshing leaves the optimizer with stale inputs —
// the paper's OOF-FA and OOF-NA ablations.
package stats

import (
	"sync"

	"recstep/internal/quickstep/gscht"
	"recstep/internal/quickstep/storage"
)

// Mode selects how much statistical data an ANALYZE collects.
type Mode int

const (
	// ModeNone collects nothing; existing statistics go stale (OOF-NA).
	ModeNone Mode = iota
	// ModeSelective collects exactly what the next query's optimizer
	// decision needs: tuple count and tuple width for joins and set
	// difference, plus a conservative distinct estimate for dedup sizing
	// (min of table size and memory budget). This is RecStep's default.
	ModeSelective
	// ModeFull additionally scans the table to compute exact per-column
	// min/max/sum/avg and the exact distinct tuple count (OOF-FA). It is the
	// expensive variant the paper shows wastes ~17% of total runtime.
	ModeFull
)

// String names the mode for logs and experiment output.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeSelective:
		return "selective"
	case ModeFull:
		return "full"
	}
	return "unknown"
}

// Table holds statistics for one relation.
type Table struct {
	NumTuples  int
	TupleBytes int
	// DistinctEst approximates the number of distinct tuples; used to size
	// dedup hash tables. Conservative: min(memory budget, table size).
	DistinctEst int
	// Per-column aggregates, populated only by ModeFull.
	ColMin, ColMax []int32
	ColSum         []int64
	DistinctExact  int
	// Fresh marks statistics as reflecting current table contents. ANALYZE
	// sets it; mutating queries clear it.
	Fresh bool
}

// Catalog stores statistics per table name.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]Table
	// MemBudgetTuples caps DistinctEst, modeling "minimum of the available
	// memory and size of the table".
	MemBudgetTuples int
}

// NewCatalog returns an empty statistics catalog. budgetTuples bounds
// distinct estimates; <=0 means unbounded.
func NewCatalog(budgetTuples int) *Catalog {
	return &Catalog{byName: make(map[string]Table), MemBudgetTuples: budgetTuples}
}

// Get returns the recorded statistics (possibly stale) and whether any exist.
func (c *Catalog) Get(name string) (Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byName[name]
	return t, ok
}

// Invalidate marks a table's statistics stale after a mutation.
func (c *Catalog) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.byName[name]; ok {
		t.Fresh = false
		c.byName[name] = t
	}
}

// Drop removes statistics for a dropped table.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.byName, name)
}

// Analyze refreshes statistics for r according to mode and records them.
// With ModeNone the stored statistics are left untouched (and possibly
// stale); if none exist yet a zero-tuples entry is created so the optimizer
// has *something*, mirroring a catalog that was never refreshed.
func (c *Catalog) Analyze(r *storage.Relation, mode Mode) Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := r.Name()
	cur, ok := c.byName[name]
	if mode == ModeNone {
		if !ok {
			cur = Table{TupleBytes: r.Arity() * 4}
			c.byName[name] = cur
		}
		return cur
	}
	t := Table{
		NumTuples:  r.NumTuples(),
		TupleBytes: r.Arity() * 4,
		Fresh:      true,
	}
	t.DistinctEst = t.NumTuples
	if c.MemBudgetTuples > 0 && t.DistinctEst > c.MemBudgetTuples {
		t.DistinctEst = c.MemBudgetTuples
	}
	if mode == ModeFull {
		fullScan(r, &t)
	}
	c.byName[name] = t
	return t
}

// fullScan computes exact column aggregates and the exact distinct count —
// the deliberately expensive part of OOF-FA.
func fullScan(r *storage.Relation, t *Table) {
	arity := r.Arity()
	t.ColMin = make([]int32, arity)
	t.ColMax = make([]int32, arity)
	t.ColSum = make([]int64, arity)
	first := true
	var distinct int
	var tab64 *gscht.Table64
	var tab128 *gscht.Table128
	var arena64 gscht.Arena64
	var arena128 gscht.Arena128
	useGeneric := arity > 4
	generic := make(map[string]struct{})
	if !useGeneric && arity <= 2 {
		tab64 = gscht.NewTable64(t.NumTuples)
	} else if !useGeneric {
		tab128 = gscht.NewTable128(t.NumTuples)
	}
	buf := make([]byte, arity*4)
	r.ForEach(func(tu []int32) {
		for i, v := range tu {
			if first || v < t.ColMin[i] {
				t.ColMin[i] = v
			}
			if first || v > t.ColMax[i] {
				t.ColMax[i] = v
			}
			t.ColSum[i] += int64(v)
		}
		first = false
		switch {
		case tab64 != nil:
			if tab64.InsertIfAbsent(gscht.PackKey64(tu), &arena64) {
				distinct++
			}
		case tab128 != nil:
			if tab128.InsertIfAbsent(gscht.PackKey128(tu), &arena128) {
				distinct++
			}
		default:
			for i, v := range tu {
				u := uint32(v)
				buf[i*4] = byte(u)
				buf[i*4+1] = byte(u >> 8)
				buf[i*4+2] = byte(u >> 16)
				buf[i*4+3] = byte(u >> 24)
			}
			k := string(buf)
			if _, ok := generic[k]; !ok {
				generic[k] = struct{}{}
				distinct++
			}
		}
	})
	t.DistinctExact = distinct
	t.DistinctEst = distinct
}
