package stats

import (
	"testing"

	"recstep/internal/quickstep/storage"
)

func rel(name string, rows ...[]int32) *storage.Relation {
	arity := 2
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	r := storage.NewRelation(name, storage.NumberedColumns(arity))
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func TestAnalyzeSelective(t *testing.T) {
	c := NewCatalog(0)
	r := rel("t", []int32{1, 2}, []int32{3, 4}, []int32{1, 2})
	got := c.Analyze(r, ModeSelective)
	if got.NumTuples != 3 {
		t.Fatalf("NumTuples = %d, want 3", got.NumTuples)
	}
	if got.TupleBytes != 8 {
		t.Fatalf("TupleBytes = %d, want 8", got.TupleBytes)
	}
	if got.DistinctEst != 3 {
		t.Fatalf("DistinctEst = %d, want conservative 3", got.DistinctEst)
	}
	if !got.Fresh {
		t.Fatal("stats should be fresh after ANALYZE")
	}
	if got.ColMin != nil {
		t.Fatal("selective mode must not compute column aggregates")
	}
}

func TestAnalyzeFull(t *testing.T) {
	c := NewCatalog(0)
	r := rel("t", []int32{1, 10}, []int32{3, -4}, []int32{1, 10})
	got := c.Analyze(r, ModeFull)
	if got.DistinctExact != 2 {
		t.Fatalf("DistinctExact = %d, want 2", got.DistinctExact)
	}
	if got.DistinctEst != 2 {
		t.Fatalf("DistinctEst = %d, want exact 2", got.DistinctEst)
	}
	if got.ColMin[0] != 1 || got.ColMin[1] != -4 {
		t.Fatalf("ColMin = %v, want [1 -4]", got.ColMin)
	}
	if got.ColMax[0] != 3 || got.ColMax[1] != 10 {
		t.Fatalf("ColMax = %v, want [3 10]", got.ColMax)
	}
	if got.ColSum[0] != 5 || got.ColSum[1] != 16 {
		t.Fatalf("ColSum = %v, want [5 16]", got.ColSum)
	}
}

func TestAnalyzeFullArity3(t *testing.T) {
	c := NewCatalog(0)
	r := rel("t", []int32{1, 2, 3}, []int32{1, 2, 3}, []int32{4, 5, 6})
	got := c.Analyze(r, ModeFull)
	if got.DistinctExact != 2 {
		t.Fatalf("DistinctExact = %d, want 2", got.DistinctExact)
	}
}

func TestAnalyzeFullArity5GenericPath(t *testing.T) {
	c := NewCatalog(0)
	r := storage.NewRelation("t", storage.NumberedColumns(5))
	r.Append([]int32{1, 2, 3, 4, 5})
	r.Append([]int32{1, 2, 3, 4, 5})
	r.Append([]int32{1, 2, 3, 4, 6})
	got := c.Analyze(r, ModeFull)
	if got.DistinctExact != 2 {
		t.Fatalf("DistinctExact = %d, want 2", got.DistinctExact)
	}
}

func TestAnalyzeNoneKeepsStale(t *testing.T) {
	c := NewCatalog(0)
	r := rel("t", []int32{1, 2})
	c.Analyze(r, ModeSelective)
	r.Append([]int32{3, 4})
	got := c.Analyze(r, ModeNone)
	if got.NumTuples != 1 {
		t.Fatalf("ModeNone must keep stale count 1, got %d", got.NumTuples)
	}
}

func TestAnalyzeNoneCreatesZeroEntry(t *testing.T) {
	c := NewCatalog(0)
	r := rel("fresh", []int32{1, 2})
	got := c.Analyze(r, ModeNone)
	if got.NumTuples != 0 {
		t.Fatalf("ModeNone on unknown table should record 0 tuples, got %d", got.NumTuples)
	}
	if _, ok := c.Get("fresh"); !ok {
		t.Fatal("entry should exist after ModeNone analyze")
	}
}

func TestMemBudgetCapsDistinctEst(t *testing.T) {
	c := NewCatalog(2)
	r := rel("t", []int32{1, 1}, []int32{2, 2}, []int32{3, 3})
	got := c.Analyze(r, ModeSelective)
	if got.DistinctEst != 2 {
		t.Fatalf("DistinctEst = %d, want capped 2", got.DistinctEst)
	}
}

func TestInvalidateAndDrop(t *testing.T) {
	c := NewCatalog(0)
	r := rel("t", []int32{1, 2})
	c.Analyze(r, ModeSelective)
	c.Invalidate("t")
	got, ok := c.Get("t")
	if !ok || got.Fresh {
		t.Fatal("Invalidate should clear Fresh")
	}
	c.Drop("t")
	if _, ok := c.Get("t"); ok {
		t.Fatal("Drop should remove stats")
	}
	c.Invalidate("absent") // no-op
}

func TestModeString(t *testing.T) {
	if ModeNone.String() != "none" || ModeSelective.String() != "selective" || ModeFull.String() != "full" {
		t.Fatal("Mode.String mismatch")
	}
}
