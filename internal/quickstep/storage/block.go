// Package storage implements the block-partitioned in-memory tuple storage
// layer of the QuickStep-like substrate. Relations hold fixed-arity int32
// tuples in row-major blocks; blocks are the unit of intra-query parallelism,
// mirroring QuickStep's block-based storage manager that RecStep builds on.
//
// Blocks are reference-counted so that the memory-managed block pool
// (internal/quickstep/memory) can recycle a block's backing array the moment
// its last holder releases it: relations share blocks freely (R ← R ⊎ ∆R is
// a block-adopting append), so the unit of reclamation has to be the block,
// not the relation.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultBlockRows is the number of tuples per storage block. Blocks are the
// scheduling granule for parallel operators, so the value balances task
// granularity against per-task overhead.
const DefaultBlockRows = 1 << 14

// defaultRowHint is the initial row capacity of a block allocated without an
// explicit size hint. Operators often emit far fewer rows than a full block,
// so eagerly reserving full-size backing arrays would dominate small queries.
const defaultRowHint = 64

// Category classifies block memory for the manager's per-category live-byte
// accounting (the paper's concern: evaluation intermediates, not base data,
// are what blow up a fixpoint's footprint).
type Category uint8

// Block memory categories. The zero value is CatIntermediate so that
// operator scratch output — the dominant and shortest-lived class — needs no
// explicit tagging.
const (
	// CatIntermediate is operator output: join results, scatter partitions,
	// dedup output, per-iteration temporaries.
	CatIntermediate Category = iota
	// CatEDB is base (input) relation data.
	CatEDB
	// CatIDB is derived relation data that survives the fixpoint (R).
	CatIDB
	// CatDelta is ∆R data produced by the delta step of the current
	// iteration. Delta blocks adopted into R are re-categorized as CatIDB.
	CatDelta
	// NumCategories bounds per-category accounting arrays.
	NumCategories
)

// String names the category for stats output.
func (c Category) String() string {
	switch c {
	case CatIntermediate:
		return "intermediate"
	case CatEDB:
		return "edb"
	case CatIDB:
		return "idb"
	case CatDelta:
		return "delta"
	}
	return "unknown"
}

// Lifecycle is the allocation hook the memory manager implements. Blocks
// allocated through a Lifecycle return their backing arrays to it on final
// release (recycling), and every alloc/free is accounted against the
// manager's per-category live-byte gauges and budget.
type Lifecycle interface {
	// AllocData returns a zero-length slice with capacity for at least
	// capInt32s int32 values, charged to cat.
	AllocData(cat Category, capInt32s int) []int32
	// FreeData returns a slice obtained from AllocData (possibly regrown
	// through AllocData) and credits cat.
	FreeData(cat Category, data []int32)
	// Recat moves bytes between category gauges when a block changes owner
	// class (∆R adopted into R becomes IDB data).
	Recat(from, to Category, bytes int64)
}

// MagazineSource is implemented by lifecycles that can hand out per-worker
// magazines: single-owner Lifecycle front-ends whose free-array caches
// refill and flush against the shared pool in batches, so a worker's
// pass-private alloc/free churn (dedup tables, hash-table node slabs) costs
// one shard lock per batch instead of one per array. A magazine must be
// returned via ReleaseMagazine when the owning pass ends; arrays it still
// holds flow back to the shared pool there.
type MagazineSource interface {
	AcquireMagazine() Lifecycle
	ReleaseMagazine(Lifecycle)
}

// Block is a fixed-arity, row-major run of tuples. A block is written by a
// single goroutine while open and becomes immutable once sealed inside a
// Relation, so readers never need locks. The reference count tracks how many
// block lists (relation contents, owned partition views) hold the block;
// Release by the last holder recycles the backing array through the block's
// Lifecycle. Blocks with a nil Lifecycle are plain heap blocks — releasing
// them is bookkeeping only and the garbage collector reclaims the array.
type Block struct {
	arity int
	data  []int32
	lc    Lifecycle
	cat   Category
	refs  atomic.Int32

	// Columnar companion: a lazily built column-major transpose of data,
	// length arity×rows, column c at [c*rows, (c+1)*rows). Built on first
	// Col() call after the block is sealed; concurrent readers (UNION ALL
	// branches scanning a shared base relation) synchronize on colsMu for
	// the build and load the published slab through the atomic pointer.
	// Writers invalidate it (blocks are single-writer while open), and the
	// final Release recycles it alongside the row data.
	colsMu sync.Mutex
	cols   atomic.Pointer[colSlab]
}

// colSlab is one immutable column-major snapshot of a block's rows. The row
// count is captured at build time so a stale slab (the block grew after the
// build) is detected and rebuilt rather than served short.
type colSlab struct {
	data []int32
	rows int
}

// NewBlock returns an empty heap block for tuples of the given arity, with
// the default small initial capacity.
func NewBlock(arity int) *Block {
	return NewBlockIn(nil, CatIntermediate, arity, defaultRowHint)
}

// NewBlockHint is NewBlock with an explicit initial row-capacity hint, so
// writers that know their output size (or recycle pool arrays) avoid the
// regrow ladder.
func NewBlockHint(arity, rowHint int) *Block {
	return NewBlockIn(nil, CatIntermediate, arity, rowHint)
}

// NewBlockIn returns an empty block whose backing array comes from lc (nil
// selects the Go heap) charged to cat, with capacity for rowHint rows. The
// caller holds the initial reference.
func NewBlockIn(lc Lifecycle, cat Category, arity, rowHint int) *Block {
	if arity <= 0 {
		panic(fmt.Sprintf("storage: invalid arity %d", arity))
	}
	if rowHint <= 0 {
		rowHint = defaultRowHint
	}
	if rowHint > DefaultBlockRows {
		rowHint = DefaultBlockRows
	}
	b := &Block{arity: arity, lc: lc, cat: cat}
	if lc != nil {
		b.data = lc.AllocData(cat, arity*rowHint)
	} else {
		b.data = make([]int32, 0, arity*rowHint)
	}
	b.refs.Store(1)
	return b
}

// BlockFromRows wraps an existing row-major slice as a block. The slice is
// retained; the caller must not mutate it afterwards. The block never
// recycles the slice (it was not pool-allocated).
func BlockFromRows(arity int, rows []int32) *Block {
	if arity <= 0 || len(rows)%arity != 0 {
		panic(fmt.Sprintf("storage: row data of length %d not divisible by arity %d", len(rows), arity))
	}
	b := &Block{arity: arity, data: rows}
	b.refs.Store(1)
	return b
}

// Retain adds a reference for an additional holder.
func (b *Block) Retain() { b.refs.Add(1) }

// Release drops one reference. The last release recycles the backing array
// through the block's Lifecycle and poisons the block (nil data), so a
// use-after-free reads zero rows or panics instead of silently reading
// recycled memory.
func (b *Block) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		if cs := b.cols.Swap(nil); cs != nil && b.lc != nil {
			b.lc.FreeData(b.cat, cs.data)
		}
		if b.lc != nil {
			d := b.data
			b.data = nil
			b.lc.FreeData(b.cat, d)
		} else {
			b.data = nil
		}
	case n < 0:
		panic("storage: block over-released")
	}
}

// Refs returns the current holder count. The spill manager uses it to skip
// partitions whose blocks are still aliased by another relation (freeing
// them would pin the data twice: once on disk, once live).
func (b *Block) Refs() int { return int(b.refs.Load()) }

// Category returns the accounting category of the block's memory.
func (b *Block) Category() Category { return b.cat }

// Recat re-classifies the block's bytes from its current category to cat
// (e.g. ∆R blocks adopted into R become IDB data).
func (b *Block) Recat(cat Category) {
	if b.cat == cat {
		return
	}
	if b.lc != nil {
		bytes := int64(cap(b.data)) * 4
		if cs := b.cols.Load(); cs != nil {
			bytes += int64(cap(cs.data)) * 4
		}
		b.lc.Recat(b.cat, cat, bytes)
	}
	b.cat = cat
}

// Arity returns the number of attributes per tuple.
func (b *Block) Arity() int { return b.arity }

// Rows returns the number of tuples stored in the block.
func (b *Block) Rows() int { return len(b.data) / b.arity }

// Row returns a view of the i-th tuple. The returned slice aliases block
// memory and must not be mutated.
func (b *Block) Row(i int) []int32 {
	off := i * b.arity
	return b.data[off : off+b.arity : off+b.arity]
}

// Data returns the raw row-major tuple data. Read-only.
func (b *Block) Data() []int32 { return b.data }

// Col returns a read-only view of column c across every row of the block,
// building the column-major slab on first use. Safe for concurrent readers
// of a sealed block; the slab allocates through the block's Lifecycle under
// the block's category and is recycled on final Release. Callers on hot
// paths should gate on row count (see optimizer.UseBatchKernels) — the
// transpose costs one pass over the block and is only worth it when batch
// kernels will read the columns more than once or vectorize over them.
func (b *Block) Col(c int) []int32 {
	rows := b.Rows()
	cs := b.cols.Load()
	if cs == nil || cs.rows != rows {
		cs = b.buildCols(rows)
	}
	return cs.data[c*cs.rows : (c+1)*cs.rows : (c+1)*cs.rows]
}

// HasCols reports whether the column slab is currently built (for tests and
// footprint accounting).
func (b *Block) HasCols() bool { return b.cols.Load() != nil }

// buildCols transposes the block under colsMu and publishes the slab. A
// racing builder that lost the lock returns the winner's slab.
func (b *Block) buildCols(rows int) *colSlab {
	b.colsMu.Lock()
	defer b.colsMu.Unlock()
	if cs := b.cols.Load(); cs != nil {
		if cs.rows == rows {
			return cs
		}
		// Stale snapshot from before the block's last append: recycle it.
		if b.lc != nil {
			b.lc.FreeData(b.cat, cs.data)
		}
		b.cols.Store(nil)
	}
	w := b.arity
	var data []int32
	if b.lc != nil {
		data = b.lc.AllocData(b.cat, rows*w)[:rows*w]
	} else {
		data = make([]int32, rows*w)
	}
	src := b.data
	for c := 0; c < w; c++ {
		col := data[c*rows : (c+1)*rows]
		for j := range col {
			col[j] = src[j*w+c]
		}
	}
	cs := &colSlab{data: data, rows: rows}
	b.cols.Store(cs)
	return cs
}

// invalidateCols drops the column slab before a mutation. Only the block's
// single writer calls it (open blocks are not shared), so no reader can
// hold a view of the freed slab.
func (b *Block) invalidateCols() {
	if b.cols.Load() == nil {
		return
	}
	b.colsMu.Lock()
	if cs := b.cols.Load(); cs != nil {
		b.cols.Store(nil)
		if b.lc != nil {
			b.lc.FreeData(b.cat, cs.data)
		}
	}
	b.colsMu.Unlock()
}

// CapBytes returns the size of the backing array — the footprint accounting
// and spilling operate on.
func (b *Block) CapBytes() int64 { return int64(cap(b.data)) * 4 }

// grow widens the backing array to hold at least need more int32 values,
// routing the reallocation through the Lifecycle so the outgrown array is
// recycled instead of abandoned to the garbage collector.
func (b *Block) grow(need int) {
	want := len(b.data) + need
	newCap := 2 * cap(b.data)
	if newCap < want {
		newCap = want
	}
	nd := b.lc.AllocData(b.cat, newCap)
	nd = nd[:len(b.data)]
	copy(nd, b.data)
	b.lc.FreeData(b.cat, b.data)
	b.data = nd
}

// Append adds one tuple to the block.
func (b *Block) Append(tuple []int32) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("storage: tuple arity %d does not match block arity %d", len(tuple), b.arity))
	}
	b.invalidateCols()
	if b.lc != nil && len(b.data)+len(tuple) > cap(b.data) {
		b.grow(len(tuple))
	}
	b.data = append(b.data, tuple...)
}

// AppendBulk adds row-major tuple data (a whole-rows multiple of arity) in
// one copy. Used by the spill manager when faulting partitions back in.
func (b *Block) AppendBulk(rows []int32) {
	if len(rows)%b.arity != 0 {
		panic(fmt.Sprintf("storage: bulk data length %d not divisible by arity %d", len(rows), b.arity))
	}
	b.invalidateCols()
	if b.lc != nil && len(b.data)+len(rows) > cap(b.data) {
		b.grow(len(rows))
	}
	b.data = append(b.data, rows...)
}

// Full reports whether the block reached the default capacity.
func (b *Block) Full() bool { return b.Rows() >= DefaultBlockRows }

// Compact shrinks a badly underfilled backing array to the smallest pool
// class that holds the data, releasing the outgrown array for reuse. Callers
// invoke it once, after the writing phase and before the block is shared:
// long fixpoints adopt one scatter block per partition per iteration, and
// near convergence those blocks carry a handful of rows each — without
// compaction the relation's footprint is dominated by empty capacity.
func (b *Block) Compact() {
	if b.lc == nil || len(b.data) == 0 || cap(b.data) < 2*len(b.data) {
		return
	}
	nd := b.lc.AllocData(b.cat, len(b.data))
	if cap(nd) >= cap(b.data) {
		// The pool's smallest class already spans the old array.
		b.lc.FreeData(b.cat, nd)
		return
	}
	nd = nd[:len(b.data)]
	copy(nd, b.data)
	b.lc.FreeData(b.cat, b.data)
	b.data = nd
}
