// Package storage implements the block-partitioned in-memory tuple storage
// layer of the QuickStep-like substrate. Relations hold fixed-arity int32
// tuples in row-major blocks; blocks are the unit of intra-query parallelism,
// mirroring QuickStep's block-based storage manager that RecStep builds on.
package storage

import "fmt"

// DefaultBlockRows is the number of tuples per storage block. Blocks are the
// scheduling granule for parallel operators, so the value balances task
// granularity against per-task overhead.
const DefaultBlockRows = 1 << 14

// Block is a fixed-arity, row-major run of tuples. A block is written by a
// single goroutine while open and becomes immutable once sealed inside a
// Relation, so readers never need locks.
type Block struct {
	arity int
	data  []int32
}

// NewBlock returns an empty block for tuples of the given arity. Capacity
// grows on demand (operators often emit far fewer rows than a full block,
// so eagerly zeroing full-size backing arrays would dominate small
// queries).
func NewBlock(arity int) *Block {
	if arity <= 0 {
		panic(fmt.Sprintf("storage: invalid arity %d", arity))
	}
	return &Block{arity: arity, data: make([]int32, 0, arity*64)}
}

// BlockFromRows wraps an existing row-major slice as a block. The slice is
// retained; the caller must not mutate it afterwards.
func BlockFromRows(arity int, rows []int32) *Block {
	if arity <= 0 || len(rows)%arity != 0 {
		panic(fmt.Sprintf("storage: row data of length %d not divisible by arity %d", len(rows), arity))
	}
	return &Block{arity: arity, data: rows}
}

// Arity returns the number of attributes per tuple.
func (b *Block) Arity() int { return b.arity }

// Rows returns the number of tuples stored in the block.
func (b *Block) Rows() int { return len(b.data) / b.arity }

// Row returns a view of the i-th tuple. The returned slice aliases block
// memory and must not be mutated.
func (b *Block) Row(i int) []int32 {
	off := i * b.arity
	return b.data[off : off+b.arity : off+b.arity]
}

// Data returns the raw row-major tuple data. Read-only.
func (b *Block) Data() []int32 { return b.data }

// Append adds one tuple to the block.
func (b *Block) Append(tuple []int32) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("storage: tuple arity %d does not match block arity %d", len(tuple), b.arity))
	}
	b.data = append(b.data, tuple...)
}

// Full reports whether the block reached the default capacity.
func (b *Block) Full() bool { return b.Rows() >= DefaultBlockRows }
