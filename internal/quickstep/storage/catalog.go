package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog maps table names to relations, mirroring the RDBMS catalog whose
// update overhead RecStep's optimizations are careful to control.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Relation)}
}

// Create registers a new empty table. It fails if the name is taken.
func (c *Catalog) Create(name string, colNames []string) (*Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	r := NewRelation(name, colNames)
	c.tables[name] = r
	return r, nil
}

// Adopt registers an existing relation under its own name, replacing any
// previous table with that name. Used by the engine to install computed
// results (e.g. swapping in a freshly deduplicated delta).
func (c *Catalog) Adopt(r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[r.Name()] = r
}

// Get looks a table up.
func (c *Catalog) Get(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.tables[name]
	return r, ok
}

// MustGet looks a table up and panics when absent; for engine-internal names
// whose existence is an invariant.
func (c *Catalog) MustGet(name string) *Relation {
	r, ok := c.Get(name)
	if !ok {
		panic(fmt.Sprintf("catalog: missing table %q", name))
	}
	return r
}

// Drop removes a table. Dropping an unknown table is a no-op, matching the
// engine's use for temporaries.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}

// Names returns all table names, sorted, for deterministic iteration.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the tuple footprint of all tables.
func (c *Catalog) TotalBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int64
	for _, r := range c.tables {
		total += r.EstimatedBytes()
	}
	return total
}
