package storage

import (
	"sync"
	"testing"
)

// countingLC tracks net outstanding bytes so tests can assert the column
// slab is recycled exactly once.
type countingLC struct {
	mu     sync.Mutex
	allocs int
	frees  int
	live   int64
}

func (c *countingLC) AllocData(cat Category, capInt32s int) []int32 {
	c.mu.Lock()
	c.allocs++
	c.live += int64(capInt32s) * 4
	c.mu.Unlock()
	return make([]int32, 0, capInt32s)
}

func (c *countingLC) FreeData(cat Category, data []int32) {
	c.mu.Lock()
	c.frees++
	c.live -= int64(cap(data)) * 4
	c.mu.Unlock()
}

func (c *countingLC) Recat(from, to Category, bytes int64) {}

func fillBlock(b *Block, rows int) {
	for i := 0; i < rows; i++ {
		b.Append([]int32{int32(i), int32(i * 10), int32(i * 100)})
	}
}

func TestColTransposesRows(t *testing.T) {
	b := NewBlock(3)
	fillBlock(b, 37)
	for c := 0; c < 3; c++ {
		col := b.Col(c)
		if len(col) != 37 {
			t.Fatalf("col %d: len %d want 37", c, len(col))
		}
		for i, v := range col {
			if want := b.Row(i)[c]; v != want {
				t.Fatalf("col %d row %d: got %d want %d", c, i, v, want)
			}
		}
	}
}

func TestColInvalidatedByAppend(t *testing.T) {
	b := NewBlock(3)
	fillBlock(b, 10)
	col0 := b.Col(0)
	if len(col0) != 10 {
		t.Fatalf("len %d want 10", len(col0))
	}
	b.Append([]int32{99, 990, 9900})
	if b.HasCols() {
		t.Fatal("column slab survived Append")
	}
	col0 = b.Col(0)
	if len(col0) != 11 || col0[10] != 99 {
		t.Fatalf("rebuilt col stale: len=%d tail=%d", len(col0), col0[10])
	}
}

func TestColConcurrentBuild(t *testing.T) {
	b := NewBlock(2)
	for i := 0; i < 1000; i++ {
		b.Append([]int32{int32(i), int32(-i)})
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				c0, c1 := b.Col(0), b.Col(1)
				for i := 0; i < 1000; i += 97 {
					if c0[i] != int32(i) || c1[i] != int32(-i) {
						t.Errorf("corrupt column read at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestColSlabRecycledOnRelease(t *testing.T) {
	lc := &countingLC{}
	b := NewBlockIn(lc, CatIntermediate, 3, 64)
	fillBlock(b, 50)
	_ = b.Col(1)
	if !b.HasCols() {
		t.Fatal("slab not built")
	}
	b.Release()
	if lc.live != 0 {
		t.Fatalf("leaked %d bytes after final Release (allocs=%d frees=%d)", lc.live, lc.allocs, lc.frees)
	}
}
