package storage

// Tuple deletion. Incremental maintenance (DRed) removes over-deleted tuples
// from resident relations in place. Deletion is the third flat-mutation kind
// next to Append and AdoptBlock, but unlike those it preserves a carried
// partitioned view when one exists: only the partitions that actually lose
// tuples are compacted (their blocks rewritten), every other partition keeps
// its blocks — and with them the spill/fault bookkeeping and the block
// sharing AppendRelation set up. Blocks shared with other relations are
// released, not freed: the other holders' references keep the data alive.

// tombstoneSet is the staged set of tuples one DeleteRows call removes — a
// plain Go map keyed on the packed tuple. Update deltas are small (that is
// the point of incremental maintenance), so a hash set per call beats
// maintaining a persistent index.
type tombstoneSet struct {
	arity int
	m     map[string]struct{}
}

func newTombstoneSet(arity int, rows [][]int32) *tombstoneSet {
	t := &tombstoneSet{arity: arity, m: make(map[string]struct{}, len(rows))}
	for _, row := range rows {
		if len(row) != arity {
			panic("storage: tombstone arity mismatch")
		}
		t.m[packTuple(row)] = struct{}{}
	}
	return t
}

func (t *tombstoneSet) has(row []int32) bool {
	_, ok := t.m[packTuple(row)]
	return ok
}

// packTuple encodes a tuple as a byte string key (4 bytes per column,
// little-endian). Allocation-free for map lookups on Go's string-keyed maps
// would need unsafe; deletion volumes are update-sized, so the copies are
// noise.
func packTuple(row []int32) string {
	buf := make([]byte, 4*len(row))
	for i, v := range row {
		u := uint32(v)
		buf[4*i] = byte(u)
		buf[4*i+1] = byte(u >> 8)
		buf[4*i+2] = byte(u >> 16)
		buf[4*i+3] = byte(u >> 24)
	}
	return string(buf)
}

// DeleteRows removes every occurrence of each given tuple from the relation,
// returning how many rows were removed. Tuples not present are ignored.
// Spilled partitions are faulted back in first; a sticky fault-read error
// poisons the call (the relation's data is partly unreachable, so a delete
// could not be applied consistently) and is returned without mutating
// anything. When the relation carries a live partitioned view, only the
// partitions containing deleted tuples are compacted and the view survives;
// otherwise the affected flat blocks are rewritten and cached views drop.
func (r *Relation) DeleteRows(rows [][]int32) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	tomb := newTombstoneSet(len(r.colNames), rows)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealLocked()
	r.faultAllLocked()
	if r.faultErr != nil {
		return 0, r.faultErr
	}
	if r.live != nil {
		return r.deletePartitionedLocked(tomb), nil
	}
	return r.deleteFlatLocked(tomb), nil
}

// deletePartitionedLocked compacts only the carried view's affected
// partitions. The flat block list is rebuilt from the view afterwards (the
// carried view aliases the flat contents by construction, so the view *is*
// the authoritative block set once spilled partitions are resident).
func (r *Relation) deletePartitionedLocked(tomb *tombstoneSet) int {
	live := r.live
	affected := make(map[int]bool)
	for key := range tomb.m {
		row := unpackTuple(key, tomb.arity)
		affected[PartitionOf(PartitionHash(row, live.keyCols), live.parts)] = true
	}
	removed := 0
	for p := range affected {
		kept, dropped, hit := compactBlocks(r.lc, r.cat, tomb, live.blocks[p])
		if !hit {
			continue
		}
		removed += dropped
		for _, b := range live.blocks[p] {
			b.Release()
		}
		live.blocks[p] = kept
		live.rows[p] -= dropped
	}
	if removed == 0 {
		return 0
	}
	flat := make([]*Block, 0, len(r.blocks))
	for p := 0; p < live.parts; p++ {
		flat = append(flat, live.blocks[p]...)
	}
	r.blocks = flat
	r.open = nil
	r.rows -= removed
	// Cached views and the secondary scatter copy are stale now; the carried
	// view itself was compacted in place and stays.
	r.retired = append(r.retired, r.ownedView...)
	r.ownedView = nil
	r.retireSecondaryLocked()
	r.partViews = map[string]*PartitionedView{partitionKey(live.keyCols, live.parts): live}
	r.gen++
	return removed
}

// deleteFlatLocked rewrites the affected blocks of an uncarried relation and
// invalidates every cached view.
func (r *Relation) deleteFlatLocked(tomb *tombstoneSet) int {
	kept, dropped, hit := compactBlocks(r.lc, r.cat, tomb, r.blocks)
	if !hit {
		return 0
	}
	for _, b := range r.blocks {
		b.Release()
	}
	r.blocks = kept
	r.open = nil
	r.rows -= dropped
	r.invalidatePartitionsLocked()
	return dropped
}

// compactBlocks returns a replacement block list with every tombstoned row
// removed, retaining untouched blocks as-is (no copy, one extra reference
// each — the caller releases its references to the *old* list wholesale).
// hit reports whether any block contained a tombstoned row; when false the
// inputs are untouched and no references moved.
func compactBlocks(lc Lifecycle, cat Category, tomb *tombstoneSet, blocks []*Block) (kept []*Block, dropped int, hit bool) {
	for _, b := range blocks {
		if blockHasTombstone(b, tomb) {
			hit = true
			break
		}
	}
	if !hit {
		return nil, 0, false
	}
	var survivors []int32
	for _, b := range blocks {
		if !blockHasTombstone(b, tomb) {
			b.Retain()
			kept = append(kept, b)
			continue
		}
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if tomb.has(row) {
				dropped++
			} else {
				survivors = append(survivors, row...)
			}
		}
	}
	kept = append(kept, BlocksFromRows(lc, cat, tomb.arity, survivors)...)
	return kept, dropped, true
}

func blockHasTombstone(b *Block, tomb *tombstoneSet) bool {
	n := b.Rows()
	for i := 0; i < n; i++ {
		if tomb.has(b.Row(i)) {
			return true
		}
	}
	return false
}

// unpackTuple reverses packTuple.
func unpackTuple(key string, arity int) []int32 {
	row := make([]int32, arity)
	for i := range row {
		u := uint32(key[4*i]) | uint32(key[4*i+1])<<8 | uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
		row[i] = int32(u)
	}
	return row
}
