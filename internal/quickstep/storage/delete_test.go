package storage

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// Flat-path deletion: affected blocks are rewritten, absent tuples are
// ignored, and releasing the relation afterwards frees every array exactly
// once (the poison lifecycle panics on double free).
func TestDeleteRowsFlat(t *testing.T) {
	lc := newPoisonLifecycle()
	r := fillRelation(lc, "r", 500, 1)

	removed, err := r.DeleteRows([][]int32{
		{1, 1},     // row 0 (seed 1, i 0)
		{3, 5},     // row 2
		{900, 900}, // absent: ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d rows, want 2", removed)
	}
	if r.NumTuples() != 498 {
		t.Fatalf("NumTuples() = %d, want 498", r.NumTuples())
	}
	r.ForEach(func(tu []int32) {
		if (tu[0] == 1 && tu[1] == 1) || (tu[0] == 3 && tu[1] == 5) {
			t.Fatalf("deleted tuple %v still present", tu)
		}
	})

	// A delete hitting nothing must not touch the block list.
	gen := r.Generation()
	removed, err = r.DeleteRows([][]int32{{901, 901}})
	if err != nil || removed != 0 {
		t.Fatalf("phantom delete: removed=%d err=%v", removed, err)
	}
	if r.Generation() != gen {
		t.Fatal("phantom delete bumped the relation generation")
	}

	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked after release", n)
	}
}

// Partitioned-path deletion: a relation carrying a live partitioned view
// keeps the view; only the partitions containing deleted tuples are
// compacted, and the partitioning descriptor survives for later carried
// merges.
func TestDeleteRowsPartitionedKeepsView(t *testing.T) {
	lc := newPoisonLifecycle()
	parts := 8
	blocks := make([][]*Block, parts)
	for p := 0; p < parts; p++ {
		blocks[p] = []*Block{NewBlockIn(lc, CatDelta, 2, 16)}
	}
	// Scatter on the first column: all rows of one source value land in the
	// partition its hash selects.
	for v := int32(0); v < 32; v++ {
		p := PartitionOf(PartitionHash([]int32{v, 0}, []int{0}), parts)
		for i := int32(0); i < 10; i++ {
			blocks[p][0].Append([]int32{v, i})
		}
	}
	r := NewRelation("r", NumberedColumns(2))
	r.SetLifecycle(lc, CatIDB)
	r.AdoptPartitioned(NewPartitionedView([]int{0}, parts, blocks))
	before := r.NumTuples()
	if before == 0 {
		t.Fatal("fixture produced no tuples")
	}

	// Delete every tuple of one source value: exactly one partition is hit.
	victim := int32(3)
	var del [][]int32
	r.ForEach(func(tu []int32) {
		if tu[0] == victim {
			del = append(del, append([]int32(nil), tu...))
		}
	})
	if len(del) == 0 {
		t.Fatal("no victim tuples in fixture")
	}
	removed, err := r.DeleteRows(del)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(del) {
		t.Fatalf("removed %d rows, want %d", removed, len(del))
	}
	if r.NumTuples() != before-len(del) {
		t.Fatalf("NumTuples() = %d, want %d", r.NumTuples(), before-len(del))
	}
	if _, ok := r.Partitioning(); !ok {
		t.Fatal("carried partitioned view dropped by partition-local delete")
	}
	r.ForEach(func(tu []int32) {
		if tu[0] == victim {
			t.Fatalf("deleted tuple %v still present", tu)
		}
	})

	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked after release", n)
	}
}

// Deleting from a relation that shares blocks with another (AppendRelation
// aliasing) must release — not free — the shared blocks: the other holder's
// contents stay intact.
func TestDeleteRowsSharedBlocksReleaseNotFree(t *testing.T) {
	lc := newPoisonLifecycle()
	src := fillRelation(lc, "src", 1000, 1)
	want := src.SortedRows()

	dst := NewRelation("dst", NumberedColumns(2))
	dst.SetLifecycle(lc, CatIntermediate)
	dst.AppendRelation(src)

	removed, err := dst.DeleteRows([][]int32{{1, 1}, {2, 3}})
	if err != nil || removed != 2 {
		t.Fatalf("removed=%d err=%v, want 2 removed", removed, err)
	}
	if got := src.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatal("delete on the sharing relation mutated the source's contents")
	}

	src.Release()
	dst.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked after releasing both relations", n)
	}
}

// Concurrent scans during deletion: DeleteRows holds the relation lock, so
// readers observe either the pre- or post-delete block list, never a torn
// one. Run under -race.
func TestDeleteRowsConcurrentScan(t *testing.T) {
	lc := newPoisonLifecycle()
	r := fillRelation(lc, "r", 2000, 1)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				n := 0
				r.ForEach(func([]int32) { n++ })
				if n > 2000 || n < 1990 {
					t.Errorf("scan saw %d tuples", n)
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if _, err := r.DeleteRows([][]int32{{int32(1 + i), int32(1 + 2*i)}}); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()

	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked after release", n)
	}
}

// packTuple/unpackTuple must roundtrip any tuple, including negative values.
func TestPackTupleRoundtrip(t *testing.T) {
	f := func(a, b, c int32) bool {
		row := []int32{a, b, c}
		return reflect.DeepEqual(unpackTuple(packTuple(row), 3), row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
