package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary table format used by the transaction manager's write-back and the
// CLI output writers: a small header (magic, arity, row count) followed by
// little-endian row-major int32 data.

const tableMagic = uint32(0x52454353) // "RECS"

// WriteRelation serializes r to w.
func WriteRelation(w io.Writer, r *Relation) error {
	bw := bufio.NewWriter(w)
	hdr := [3]uint32{tableMagic, uint32(r.Arity()), uint32(r.NumTuples())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("storage: writing header: %w", err)
		}
	}
	var buf [4]byte
	for _, b := range r.Blocks() {
		for _, v := range b.Data() {
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return fmt.Errorf("storage: writing rows: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadRelation deserializes a relation written by WriteRelation.
func ReadRelation(rd io.Reader, name string) (*Relation, error) {
	br := bufio.NewReader(rd)
	var hdr [3]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("storage: reading header: %w", err)
		}
	}
	if hdr[0] != tableMagic {
		return nil, fmt.Errorf("storage: bad magic %#x", hdr[0])
	}
	arity, rows := int(hdr[1]), int(hdr[2])
	if arity <= 0 || arity > 64 {
		return nil, fmt.Errorf("storage: implausible arity %d", arity)
	}
	r := NewRelation(name, NumberedColumns(arity))
	data := make([]int32, arity*rows)
	var buf [4]byte
	for i := range data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("storage: reading row data: %w", err)
		}
		data[i] = int32(binary.LittleEndian.Uint32(buf[:]))
	}
	r.AppendRows(data)
	return r, nil
}
