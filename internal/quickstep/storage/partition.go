package storage

import (
	"fmt"
	"strings"
)

// MaxPartitions bounds the radix fan-out. 256 partitions keeps the scatter
// buffers of one worker (256 open blocks) within cache-friendly bounds while
// leaving enough independent build tasks for any realistic core count.
const MaxPartitions = 256

// partitionMult is the Fibonacci multiplier used to mix key columns into a
// partition hash. Partition selection uses the *high* bits of the mixed hash
// so that any hash table built over the bottom bits inside one partition
// stays uncorrelated with the partition choice.
const partitionMult = 0x9E3779B97F4A7C15

// PartitionHash mixes the key columns of a row into a 64-bit hash. Build and
// probe sides of a join must call this with their respective key column
// lists so that matching key values land in the same partition.
func PartitionHash(row []int32, cols []int) uint64 {
	h := uint64(0x9E3779B9)
	for _, c := range cols {
		h = (h ^ uint64(uint32(row[c]))) * partitionMult
	}
	return h
}

// PartitionOf maps a partition hash to one of parts partitions. parts must
// be a power of two (see NormalizePartitions).
func PartitionOf(h uint64, parts int) int {
	return int((h >> 40) & uint64(parts-1))
}

// NormalizePartitions clamps a requested partition count to a power of two
// in [1, MaxPartitions].
func NormalizePartitions(parts int) int {
	if parts <= 1 {
		return 1
	}
	if parts > MaxPartitions {
		parts = MaxPartitions
	}
	p := 1
	for p < parts {
		p <<= 1
	}
	return p
}

// Partitioning describes a radix partitioning: tuples are routed to one of
// Parts partitions by PartitionHash over KeyCols. It is the descriptor
// relations carry through the fixpoint pipeline so downstream operators can
// recognise — and reuse — upstream scatter work instead of re-partitioning.
type Partitioning struct {
	KeyCols []int
	Parts   int
}

// AllCols returns the identity column list 0..arity-1 — the key set of
// whole-tuple partitionings (dedup, set difference, delta materialization).
func AllCols(arity int) []int {
	cols := make([]int, arity)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Equal reports whether two partitionings route every tuple identically.
func (p Partitioning) Equal(o Partitioning) bool {
	return p.Parts == o.Parts && KeyColsEqual(p.KeyCols, o.KeyCols)
}

// KeyColsEqual reports whether two key-column lists are identical — same
// columns in the same order, the condition for identical radix routing
// (PartitionHash mixes columns order-sensitively).
func KeyColsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, c := range a {
		if c != b[i] {
			return false
		}
	}
	return true
}

// CoLocatesEqualTuples reports whether the partitioning routes identical
// tuples of the given arity to the same partition — the compatibility
// requirement of the whole-tuple delta-pipeline operators (dedup, set
// difference). Any non-empty key subset within the arity qualifies: equal
// tuples agree on every column, so they hash identically under any
// key-column selection. This is what lets a *join-key* partitioning be
// carried through the fused delta step in place of the whole-tuple layout;
// DeltaStep asserts it, catching planner bugs that attribute combined-row
// key positions to a base relation.
func (p Partitioning) CoLocatesEqualTuples(arity int) bool {
	if len(p.KeyCols) == 0 {
		return false
	}
	for _, c := range p.KeyCols {
		if c < 0 || c >= arity {
			return false
		}
	}
	return true
}

// String renders the descriptor for diagnostics.
func (p Partitioning) String() string {
	return fmt.Sprintf("part(%v/%d)", p.KeyCols, p.Parts)
}

// PartitionedView is a radix-partitioned snapshot of a relation: every tuple
// is routed to one of Parts() partitions by the hash of its key columns, and
// each partition holds its tuples as an independent immutable block list.
// Operators that consume a view own their partition exclusively, so builds
// over it need no latches. Views are cached on the source Relation per
// (key-set, partition-count) and invalidated on mutation. A view installed
// as a relation's *carried* partitioning gets an owner backpointer, through
// which partition access routes so spilled partitions fault back in
// transparently.
type PartitionedView struct {
	keyCols []int
	parts   int
	blocks  [][]*Block
	rows    []int
	owner   *Relation // set when installed as a relation's live view
}

// NewPartitionedView wraps scattered per-partition block lists. blocks must
// have length parts; the caller relinquishes ownership of all blocks.
func NewPartitionedView(keyCols []int, parts int, blocks [][]*Block) *PartitionedView {
	if len(blocks) != parts {
		panic(fmt.Sprintf("storage: partitioned view has %d block lists for %d partitions", len(blocks), parts))
	}
	v := &PartitionedView{
		keyCols: append([]int(nil), keyCols...),
		parts:   parts,
		blocks:  blocks,
		rows:    make([]int, parts),
	}
	for p, bs := range blocks {
		for _, b := range bs {
			v.rows[p] += b.Rows()
		}
	}
	return v
}

// Parts returns the partition count.
func (v *PartitionedView) Parts() int { return v.parts }

// Partitioning returns the view's routing descriptor.
func (v *PartitionedView) Partitioning() Partitioning {
	return Partitioning{KeyCols: v.keyCols, Parts: v.parts}
}

// clone returns a shallow copy sharing block lists but with independent
// identity (no owner). Installing a clone — rather than the source view
// object — as another relation's carried view keeps ownership and spill
// state strictly per-relation.
func (v *PartitionedView) clone() *PartitionedView {
	blocks := make([][]*Block, v.parts)
	for p := range blocks {
		blocks[p] = append([]*Block(nil), v.blocks[p]...)
	}
	return &PartitionedView{
		keyCols: append([]int(nil), v.keyCols...),
		parts:   v.parts,
		blocks:  blocks,
		rows:    append([]int(nil), v.rows...),
	}
}

// mergeViews concatenates the per-partition block lists of two views with
// identical partitioning. Blocks are shared, not copied. Row counts are
// summed rather than recomputed so partitions of a spilled to-disk view keep
// reporting their full cardinality.
func mergeViews(a, b *PartitionedView) *PartitionedView {
	blocks := make([][]*Block, a.parts)
	rows := make([]int, a.parts)
	for p := 0; p < a.parts; p++ {
		bs := make([]*Block, 0, len(a.blocks[p])+len(b.blocks[p]))
		bs = append(bs, a.blocks[p]...)
		bs = append(bs, b.blocks[p]...)
		blocks[p] = bs
		rows[p] = a.rows[p] + b.rows[p]
	}
	return &PartitionedView{
		keyCols: append([]int(nil), a.keyCols...),
		parts:   a.parts,
		blocks:  blocks,
		rows:    rows,
	}
}

// KeyCols returns the columns the view is partitioned on. Read-only.
func (v *PartitionedView) KeyCols() []int { return v.keyCols }

// Blocks returns partition p's block list. Read-only. When the view is a
// relation's carried partitioning and partition p was spilled to disk, the
// access faults it back in transparently and records the touch for the
// LRU spill policy.
func (v *PartitionedView) Blocks(p int) []*Block {
	if r := v.owner; r != nil {
		return r.partitionBlocks(v, p)
	}
	return v.blocks[p]
}

// Rows returns partition p's tuple count, including spilled tuples.
func (v *PartitionedView) Rows(p int) int { return v.rows[p] }

// NumTuples returns the total tuple count across partitions.
func (v *PartitionedView) NumTuples() int {
	total := 0
	for _, n := range v.rows {
		total += n
	}
	return total
}

// partitionKey identifies one cached view.
func partitionKey(keyCols []int, parts int) string {
	var b strings.Builder
	for _, c := range keyCols {
		fmt.Fprintf(&b, "%d,", c)
	}
	fmt.Fprintf(&b, "/%d", parts)
	return b.String()
}

// CachedPartitionedView returns the cached view for (keyCols, parts), if one
// was stored since the last mutation, along with the mutation generation to
// pass back to StorePartitionedView after building a missing view.
func (r *Relation) CachedPartitionedView(keyCols []int, parts int) (v *PartitionedView, gen uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok = r.partViews[partitionKey(keyCols, parts)]
	return v, r.gen, ok
}

// StorePartitionedView caches a view built from the snapshot taken at
// mutation generation gen. A mutation that interleaved with the build bumps
// the generation, and the now-stale view is silently not cached (the caller
// still holds a consistent snapshot of the contents it scanned). Concurrent
// stores for the same key at the same generation are harmless: both views
// describe identical contents and the last one wins. The relation takes
// ownership of the view's scatter-copy blocks: they are released when the
// cache is invalidated (after the engine's retire/reclaim quiescence) or
// when the relation is released.
func (r *Relation) StorePartitionedView(v *PartitionedView, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		r.retireViewBlocksLocked(v)
		return
	}
	if r.partViews == nil {
		r.partViews = make(map[string]*PartitionedView)
	}
	r.partViews[partitionKey(v.keyCols, v.parts)] = v
	for p := range v.blocks {
		r.ownedView = append(r.ownedView, v.blocks[p]...)
	}
}

// StoreCarriedView promotes a view built from the snapshot taken at mutation
// generation gen to the relation's *carried* partitioning: subsequent
// compatible partitioned appends merge into it instead of invalidating. A
// relation carries at most one partitioning — promoting replaces the
// previous one. Because the view's partitions are a scatter *copy* of the
// current contents, the relation's flat block list is replaced by the view's
// blocks: keeping both would double the footprint (the memory regression the
// block pool exists to prevent). The superseded flat blocks and any
// scatter copies owned for previously cached views are retired, to be
// recycled at the next ReclaimRetired. Stale promotions (gen advanced) are
// refused, exactly like StorePartitionedView.
func (r *Relation) StoreCarriedView(v *PartitionedView, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		r.retireViewBlocksLocked(v)
		return
	}
	if len(r.slots) != 0 {
		// The promoted view was built from a fully faulted snapshot (the
		// scatter read every tuple); stale slots here would mean the caller
		// bypassed Blocks().
		panic(fmt.Sprintf("storage: StoreCarriedView on %q with spilled partitions", r.name))
	}
	// Retire the old physical layout: the flat list is superseded by the
	// scatter copy, and all previously cached views die with the cache reset.
	// Blocks of v itself are excluded — when a previously cached view is
	// promoted, its blocks move from view ownership to the flat list rather
	// than being retired out from under it.
	keep := make(map[*Block]struct{})
	for p := range v.blocks {
		for _, b := range v.blocks[p] {
			keep[b] = struct{}{}
		}
	}
	for _, b := range r.blocks {
		if _, own := keep[b]; !own {
			r.retired = append(r.retired, b)
		}
	}
	for _, b := range r.ownedView {
		if _, own := keep[b]; !own {
			r.retired = append(r.retired, b)
		}
	}
	r.ownedView = nil
	r.open = nil
	r.blocks = nil
	rows := 0
	for p := range v.blocks {
		for _, b := range v.blocks[p] {
			if b.Rows() == 0 {
				continue
			}
			r.adoptCategoryLocked(b)
			r.blocks = append(r.blocks, b)
			rows += b.Rows()
		}
	}
	r.rows = rows
	r.installLiveLocked(v)
	// A secondary view that now routes identically to the promoted primary
	// is a pure duplicate; drop it. (Distinct-keyset secondaries survive the
	// promotion untouched: the logical contents did not change.)
	if r.sec != nil && r.sec.Partitioning().Equal(v.Partitioning()) {
		r.retireSecondaryLocked()
	}
}

// StoreSecondaryView attaches a view built from the snapshot taken at
// mutation generation gen as the relation's *secondary* carried
// partitioning: a second physical layout, routed on a different keyset than
// the primary, maintained for predicates whose recursive joins build on
// conflicting key columns. Unlike StoreCarriedView, the view's blocks do NOT
// replace the flat list — they duplicate the contents in a second layout and
// are owned by the relation on behalf of the view. Compatible partitioned
// appends keep the view alive by merging the source's matching secondary
// view (see AppendRelation); any flat mutation retires it. Stale stores
// (gen advanced) and stores duplicating the primary routing are refused,
// with the refused blocks retired for recycling. The mutation generation is
// not advanced: the logical contents are unchanged, so existing cached
// views stay valid.
func (r *Relation) StoreSecondaryView(v *PartitionedView, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen || (r.live != nil && r.live.Partitioning().Equal(v.Partitioning())) {
		r.retireViewBlocksLocked(v)
		return
	}
	r.retireSecondaryLocked()
	for p := range v.blocks {
		for _, b := range v.blocks[p] {
			r.adoptCategoryLocked(b)
		}
	}
	r.sec = v
}

// retireViewBlocksLocked takes custody of a refused view's scatter-copy
// blocks. The caller of the refused store still scans the view for the rest
// of its query, so the blocks are retired — recycled at the next quiescent
// ReclaimRetired — rather than leaked with their pool accounting charged
// forever.
func (r *Relation) retireViewBlocksLocked(v *PartitionedView) {
	for p := range v.blocks {
		r.retired = append(r.retired, v.blocks[p]...)
	}
}

// invalidatePartitionsLocked drops all cached views and the carried
// partitioning; callers hold r.mu and must have faulted spilled partitions
// back in first (flat mutations orphan spill slots otherwise). Scatter
// copies owned for cached views are retired, not released: an in-flight
// operator may still be scanning them, so they are recycled only at the
// next quiescent ReclaimRetired.
func (r *Relation) invalidatePartitionsLocked() {
	if len(r.slots) != 0 {
		if r.faultErr == nil {
			// No fault failure on record: leftover spilled data here is a
			// protocol violation (the mutation path forgot faultAllLocked),
			// not an environmental problem — keep panicking.
			panic(fmt.Sprintf("storage: invalidating partitions of %q with spilled data", r.name))
		}
		// faultAllLocked stopped early on a fault-read failure; the run is
		// aborting. Discard the unreachable slots and drop their tuples from
		// the row count so the relation stays internally consistent for
		// whatever teardown code still touches it.
		for _, slot := range r.slots {
			r.pager.DropSpill(slot.token)
			r.rows -= slot.rows
		}
		r.slots = nil
	}
	r.retired = append(r.retired, r.ownedView...)
	r.ownedView = nil
	r.partViews = nil
	if r.live != nil {
		r.live.owner = nil
		r.live = nil
	}
	r.retireSecondaryLocked()
	r.touch = nil
	r.gen++
}
