package storage

import (
	"fmt"
	"strings"
)

// MaxPartitions bounds the radix fan-out. 256 partitions keeps the scatter
// buffers of one worker (256 open blocks) within cache-friendly bounds while
// leaving enough independent build tasks for any realistic core count.
const MaxPartitions = 256

// partitionMult is the Fibonacci multiplier used to mix key columns into a
// partition hash. Partition selection uses the *high* bits of the mixed hash
// so that any hash table built over the bottom bits inside one partition
// stays uncorrelated with the partition choice.
const partitionMult = 0x9E3779B97F4A7C15

// PartitionHash mixes the key columns of a row into a 64-bit hash. Build and
// probe sides of a join must call this with their respective key column
// lists so that matching key values land in the same partition.
func PartitionHash(row []int32, cols []int) uint64 {
	h := uint64(0x9E3779B9)
	for _, c := range cols {
		h = (h ^ uint64(uint32(row[c]))) * partitionMult
	}
	return h
}

// PartitionOf maps a partition hash to one of parts partitions. parts must
// be a power of two (see NormalizePartitions).
func PartitionOf(h uint64, parts int) int {
	return int((h >> 40) & uint64(parts-1))
}

// NormalizePartitions clamps a requested partition count to a power of two
// in [1, MaxPartitions].
func NormalizePartitions(parts int) int {
	if parts <= 1 {
		return 1
	}
	if parts > MaxPartitions {
		parts = MaxPartitions
	}
	p := 1
	for p < parts {
		p <<= 1
	}
	return p
}

// Partitioning describes a radix partitioning: tuples are routed to one of
// Parts partitions by PartitionHash over KeyCols. It is the descriptor
// relations carry through the fixpoint pipeline so downstream operators can
// recognise — and reuse — upstream scatter work instead of re-partitioning.
type Partitioning struct {
	KeyCols []int
	Parts   int
}

// AllCols returns the identity column list 0..arity-1 — the key set of
// whole-tuple partitionings (dedup, set difference, delta materialization).
func AllCols(arity int) []int {
	cols := make([]int, arity)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Equal reports whether two partitionings route every tuple identically.
func (p Partitioning) Equal(o Partitioning) bool {
	if p.Parts != o.Parts || len(p.KeyCols) != len(o.KeyCols) {
		return false
	}
	for i, c := range p.KeyCols {
		if c != o.KeyCols[i] {
			return false
		}
	}
	return true
}

// String renders the descriptor for diagnostics.
func (p Partitioning) String() string {
	return fmt.Sprintf("part(%v/%d)", p.KeyCols, p.Parts)
}

// PartitionedView is a radix-partitioned snapshot of a relation: every tuple
// is routed to one of Parts() partitions by the hash of its key columns, and
// each partition holds its tuples as an independent immutable block list.
// Operators that consume a view own their partition exclusively, so builds
// over it need no latches. Views are cached on the source Relation per
// (key-set, partition-count) and invalidated on mutation.
type PartitionedView struct {
	keyCols []int
	parts   int
	blocks  [][]*Block
	rows    []int
}

// NewPartitionedView wraps scattered per-partition block lists. blocks must
// have length parts; the caller relinquishes ownership of all blocks.
func NewPartitionedView(keyCols []int, parts int, blocks [][]*Block) *PartitionedView {
	if len(blocks) != parts {
		panic(fmt.Sprintf("storage: partitioned view has %d block lists for %d partitions", len(blocks), parts))
	}
	v := &PartitionedView{
		keyCols: append([]int(nil), keyCols...),
		parts:   parts,
		blocks:  blocks,
		rows:    make([]int, parts),
	}
	for p, bs := range blocks {
		for _, b := range bs {
			v.rows[p] += b.Rows()
		}
	}
	return v
}

// Parts returns the partition count.
func (v *PartitionedView) Parts() int { return v.parts }

// Partitioning returns the view's routing descriptor.
func (v *PartitionedView) Partitioning() Partitioning {
	return Partitioning{KeyCols: v.keyCols, Parts: v.parts}
}

// mergeViews concatenates the per-partition block lists of two views with
// identical partitioning. Blocks are shared, not copied.
func mergeViews(a, b *PartitionedView) *PartitionedView {
	blocks := make([][]*Block, a.parts)
	for p := 0; p < a.parts; p++ {
		bs := make([]*Block, 0, len(a.blocks[p])+len(b.blocks[p]))
		bs = append(bs, a.blocks[p]...)
		bs = append(bs, b.blocks[p]...)
		blocks[p] = bs
	}
	return NewPartitionedView(a.keyCols, a.parts, blocks)
}

// KeyCols returns the columns the view is partitioned on. Read-only.
func (v *PartitionedView) KeyCols() []int { return v.keyCols }

// Blocks returns partition p's block list. Read-only.
func (v *PartitionedView) Blocks(p int) []*Block { return v.blocks[p] }

// Rows returns partition p's tuple count.
func (v *PartitionedView) Rows(p int) int { return v.rows[p] }

// NumTuples returns the total tuple count across partitions.
func (v *PartitionedView) NumTuples() int {
	total := 0
	for _, n := range v.rows {
		total += n
	}
	return total
}

// partitionKey identifies one cached view.
func partitionKey(keyCols []int, parts int) string {
	var b strings.Builder
	for _, c := range keyCols {
		fmt.Fprintf(&b, "%d,", c)
	}
	fmt.Fprintf(&b, "/%d", parts)
	return b.String()
}

// CachedPartitionedView returns the cached view for (keyCols, parts), if one
// was stored since the last mutation, along with the mutation generation to
// pass back to StorePartitionedView after building a missing view.
func (r *Relation) CachedPartitionedView(keyCols []int, parts int) (v *PartitionedView, gen uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok = r.partViews[partitionKey(keyCols, parts)]
	return v, r.gen, ok
}

// StorePartitionedView caches a view built from the snapshot taken at
// mutation generation gen. A mutation that interleaved with the build bumps
// the generation, and the now-stale view is silently not cached (the caller
// still holds a consistent snapshot of the contents it scanned). Concurrent
// stores for the same key at the same generation are harmless: both views
// describe identical contents and the last one wins.
func (r *Relation) StorePartitionedView(v *PartitionedView, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		return
	}
	if r.partViews == nil {
		r.partViews = make(map[string]*PartitionedView)
	}
	r.partViews[partitionKey(v.keyCols, v.parts)] = v
}

// StoreCarriedView promotes a view built from the snapshot taken at mutation
// generation gen to the relation's *carried* partitioning: subsequent
// compatible partitioned appends merge into it instead of invalidating. A
// relation carries at most one partitioning — promoting replaces the previous
// one (the whole-tuple delta partitioning wins over transient join-key
// views, which stay in the ordinary cache). Stale promotions (gen advanced)
// are refused, exactly like StorePartitionedView.
func (r *Relation) StoreCarriedView(v *PartitionedView, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		return
	}
	if r.partViews == nil {
		r.partViews = make(map[string]*PartitionedView)
	}
	r.partViews[partitionKey(v.keyCols, v.parts)] = v
	r.live = v
}

// invalidatePartitionsLocked drops all cached views and the carried
// partitioning; callers hold r.mu.
func (r *Relation) invalidatePartitionsLocked() {
	r.partViews = nil
	r.live = nil
	r.gen++
}
