package storage

import "testing"

func TestNormalizePartitions(t *testing.T) {
	cases := [][2]int{
		{0, 1}, {1, 1}, {-3, 1},
		{2, 2}, {3, 4}, {16, 16}, {17, 32},
		{256, 256}, {1000, 256}, {1 << 20, 256},
	}
	for _, c := range cases {
		if got := NormalizePartitions(c[0]); got != c[1] {
			t.Fatalf("NormalizePartitions(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPartitionOfRangeAndStability(t *testing.T) {
	row := []int32{42, -7, 1 << 20}
	cols := []int{0, 1, 2}
	h := PartitionHash(row, cols)
	if h != PartitionHash(row, cols) {
		t.Fatal("PartitionHash is not deterministic")
	}
	for _, parts := range []int{1, 16, 64, 256} {
		p := PartitionOf(h, parts)
		if p < 0 || p >= parts {
			t.Fatalf("PartitionOf(%d) = %d out of range", parts, p)
		}
	}
	// Equal key values on different columns must land together: build and
	// probe sides address their keys through different column lists.
	probe := []int32{0, 42, -7, 1 << 20}
	if PartitionHash(probe, []int{1, 2, 3}) != h {
		t.Fatal("hash differs for identical key values at different positions")
	}
}

func TestPartitionHashSpreads(t *testing.T) {
	// Sequential keys (the worst structured case) should not collapse onto
	// a few partitions.
	const parts = 16
	var counts [parts]int
	for i := 0; i < 1600; i++ {
		counts[PartitionOf(PartitionHash([]int32{int32(i)}, []int{0}), parts)]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d received no sequential keys", p)
		}
	}
}

func TestCachedPartitionedViewLifecycle(t *testing.T) {
	r := NewRelation("t", NumberedColumns(2))
	r.Append([]int32{1, 2})
	_, gen, ok := r.CachedPartitionedView([]int{0}, 4)
	if ok {
		t.Fatal("cache should start empty")
	}
	v := NewPartitionedView([]int{0}, 4, make([][]*Block, 4))
	r.StorePartitionedView(v, gen)
	got, gen, ok := r.CachedPartitionedView([]int{0}, 4)
	if !ok || got != v {
		t.Fatal("stored view not returned")
	}
	if _, _, ok := r.CachedPartitionedView([]int{0}, 8); ok {
		t.Fatal("different partition count must miss")
	}
	if _, _, ok := r.CachedPartitionedView([]int{1}, 4); ok {
		t.Fatal("different key columns must miss")
	}
	r.Append([]int32{3, 4})
	if _, _, ok := r.CachedPartitionedView([]int{0}, 4); ok {
		t.Fatal("append must invalidate the cache")
	}
	// gen predates the append: the stale view must be refused.
	r.StorePartitionedView(v, gen)
	if _, _, ok := r.CachedPartitionedView([]int{0}, 4); ok {
		t.Fatal("store with a stale generation must be refused")
	}
	_, gen, _ = r.CachedPartitionedView([]int{0}, 4)
	r.StorePartitionedView(v, gen)
	r.Clear()
	if _, _, ok := r.CachedPartitionedView([]int{0}, 4); ok {
		t.Fatal("clear must invalidate the cache")
	}
}

func TestPartitionedViewCounts(t *testing.T) {
	b0 := BlockFromRows(2, []int32{1, 2, 3, 4})
	b1 := BlockFromRows(2, []int32{5, 6})
	v := NewPartitionedView([]int{0}, 2, [][]*Block{{b0}, {b1}})
	if v.Rows(0) != 2 || v.Rows(1) != 1 || v.NumTuples() != 3 {
		t.Fatalf("view counts = %d/%d/%d", v.Rows(0), v.Rows(1), v.NumTuples())
	}
	if len(v.Blocks(0)) != 1 || v.KeyCols()[0] != 0 {
		t.Fatal("view accessors broken")
	}
}

// scatterInto builds a correctly-routed partitioned view of row-major data.
func scatterInto(arity, parts int, rows []int32) *PartitionedView {
	keyCols := AllCols(arity)
	blocks := make([][]*Block, parts)
	for off := 0; off < len(rows); off += arity {
		row := rows[off : off+arity]
		p := PartitionOf(PartitionHash(row, keyCols), parts)
		if len(blocks[p]) == 0 {
			blocks[p] = []*Block{NewBlock(arity)}
		}
		blocks[p][0].Append(row)
	}
	return NewPartitionedView(keyCols, parts, blocks)
}

func TestCarriedPartitioningSurvivesCompatibleAppend(t *testing.T) {
	const parts = 4
	want := Partitioning{KeyCols: AllCols(2), Parts: parts}

	r := NewRelation("r", NumberedColumns(2))
	r.AdoptPartitioned(scatterInto(2, parts, []int32{1, 2, 3, 4, 5, 6}))
	if got, ok := r.Partitioning(); !ok || !got.Equal(want) {
		t.Fatalf("adopt did not carry %v", want)
	}
	if r.NumTuples() != 3 {
		t.Fatalf("adopted relation holds %d tuples, want 3", r.NumTuples())
	}

	// Compatible append: carried partitioning survives, views merge.
	d := NewRelation("d", NumberedColumns(2))
	d.AdoptPartitioned(scatterInto(2, parts, []int32{7, 8, 9, 10}))
	r.AppendRelation(d)
	if got, ok := r.Partitioning(); !ok || !got.Equal(want) {
		t.Fatal("compatible append dropped the carried partitioning")
	}
	v, ok := r.CarriedView(AllCols(2), parts)
	if !ok || v.NumTuples() != 5 {
		t.Fatalf("merged carried view holds %d tuples, want 5", v.NumTuples())
	}
	// The merged view must also hit the ordinary cache path.
	if cv, _, ok := r.CachedPartitionedView(AllCols(2), parts); !ok || cv != v {
		t.Fatal("carried view is not mirrored into the view cache")
	}

	// Incompatible append (different fan-out): partitioning is dropped.
	d2 := NewRelation("d2", NumberedColumns(2))
	d2.AdoptPartitioned(scatterInto(2, 8, []int32{11, 12}))
	r.AppendRelation(d2)
	if _, ok := r.Partitioning(); ok {
		t.Fatal("incompatible append kept a stale carried partitioning")
	}
	if r.NumTuples() != 6 {
		t.Fatalf("relation holds %d tuples, want 6", r.NumTuples())
	}

	// A flat mutation must always drop the carried partitioning.
	e := NewRelation("e", NumberedColumns(2))
	e.AdoptPartitioned(scatterInto(2, parts, []int32{1, 2}))
	e.Append([]int32{9, 9})
	if _, ok := e.Partitioning(); ok {
		t.Fatal("flat append kept the carried partitioning")
	}
}

func TestEmptyRelationAdoptsAppendedPartitioning(t *testing.T) {
	const parts = 4
	d := NewRelation("d", NumberedColumns(2))
	d.AdoptPartitioned(scatterInto(2, parts, []int32{1, 2, 3, 4}))
	r := NewRelation("r", NumberedColumns(2))
	r.AppendRelation(d)
	if got, ok := r.Partitioning(); !ok || !got.Equal(Partitioning{KeyCols: AllCols(2), Parts: parts}) {
		t.Fatal("append into empty relation did not adopt the source partitioning")
	}
}

func TestStoreCarriedViewRefusesStaleGeneration(t *testing.T) {
	r := NewRelation("r", NumberedColumns(2))
	r.Append([]int32{1, 2})
	_, gen, _ := r.CachedPartitionedView(AllCols(2), 2)
	v := scatterInto(2, 2, []int32{1, 2})
	r.Append([]int32{3, 4}) // advances the generation
	r.StoreCarriedView(v, gen)
	if _, ok := r.Partitioning(); ok {
		t.Fatal("stale carried-view promotion must be refused")
	}
	_, gen, _ = r.CachedPartitionedView(AllCols(2), 2)
	v2 := scatterInto(2, 2, []int32{1, 2, 3, 4})
	r.StoreCarriedView(v2, gen)
	if _, ok := r.Partitioning(); !ok {
		t.Fatal("current-generation carried-view promotion must stick")
	}
}
