package storage

import "testing"

func TestNormalizePartitions(t *testing.T) {
	cases := [][2]int{
		{0, 1}, {1, 1}, {-3, 1},
		{2, 2}, {3, 4}, {16, 16}, {17, 32},
		{256, 256}, {1000, 256}, {1 << 20, 256},
	}
	for _, c := range cases {
		if got := NormalizePartitions(c[0]); got != c[1] {
			t.Fatalf("NormalizePartitions(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPartitionOfRangeAndStability(t *testing.T) {
	row := []int32{42, -7, 1 << 20}
	cols := []int{0, 1, 2}
	h := PartitionHash(row, cols)
	if h != PartitionHash(row, cols) {
		t.Fatal("PartitionHash is not deterministic")
	}
	for _, parts := range []int{1, 16, 64, 256} {
		p := PartitionOf(h, parts)
		if p < 0 || p >= parts {
			t.Fatalf("PartitionOf(%d) = %d out of range", parts, p)
		}
	}
	// Equal key values on different columns must land together: build and
	// probe sides address their keys through different column lists.
	probe := []int32{0, 42, -7, 1 << 20}
	if PartitionHash(probe, []int{1, 2, 3}) != h {
		t.Fatal("hash differs for identical key values at different positions")
	}
}

func TestPartitionHashSpreads(t *testing.T) {
	// Sequential keys (the worst structured case) should not collapse onto
	// a few partitions.
	const parts = 16
	var counts [parts]int
	for i := 0; i < 1600; i++ {
		counts[PartitionOf(PartitionHash([]int32{int32(i)}, []int{0}), parts)]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d received no sequential keys", p)
		}
	}
}

func TestCachedPartitionedViewLifecycle(t *testing.T) {
	r := NewRelation("t", NumberedColumns(2))
	r.Append([]int32{1, 2})
	_, gen, ok := r.CachedPartitionedView([]int{0}, 4)
	if ok {
		t.Fatal("cache should start empty")
	}
	v := NewPartitionedView([]int{0}, 4, make([][]*Block, 4))
	r.StorePartitionedView(v, gen)
	got, gen, ok := r.CachedPartitionedView([]int{0}, 4)
	if !ok || got != v {
		t.Fatal("stored view not returned")
	}
	if _, _, ok := r.CachedPartitionedView([]int{0}, 8); ok {
		t.Fatal("different partition count must miss")
	}
	if _, _, ok := r.CachedPartitionedView([]int{1}, 4); ok {
		t.Fatal("different key columns must miss")
	}
	r.Append([]int32{3, 4})
	if _, _, ok := r.CachedPartitionedView([]int{0}, 4); ok {
		t.Fatal("append must invalidate the cache")
	}
	// gen predates the append: the stale view must be refused.
	r.StorePartitionedView(v, gen)
	if _, _, ok := r.CachedPartitionedView([]int{0}, 4); ok {
		t.Fatal("store with a stale generation must be refused")
	}
	_, gen, _ = r.CachedPartitionedView([]int{0}, 4)
	r.StorePartitionedView(v, gen)
	r.Clear()
	if _, _, ok := r.CachedPartitionedView([]int{0}, 4); ok {
		t.Fatal("clear must invalidate the cache")
	}
}

func TestPartitionedViewCounts(t *testing.T) {
	b0 := BlockFromRows(2, []int32{1, 2, 3, 4})
	b1 := BlockFromRows(2, []int32{5, 6})
	v := NewPartitionedView([]int{0}, 2, [][]*Block{{b0}, {b1}})
	if v.Rows(0) != 2 || v.Rows(1) != 1 || v.NumTuples() != 3 {
		t.Fatalf("view counts = %d/%d/%d", v.Rows(0), v.Rows(1), v.NumTuples())
	}
	if len(v.Blocks(0)) != 1 || v.KeyCols()[0] != 0 {
		t.Fatal("view accessors broken")
	}
}
