package storage

import (
	"reflect"
	"sync"
	"testing"
)

// poisonLifecycle is a test allocator that records every outstanding array,
// fails on double-free, and poisons freed arrays so any reader still holding
// one sees garbage instead of silently-correct stale data.
type poisonLifecycle struct {
	mu     sync.Mutex
	live   map[*int32]int // first-element pointer -> cap
	allocs int
	frees  int
}

func newPoisonLifecycle() *poisonLifecycle {
	return &poisonLifecycle{live: make(map[*int32]int)}
}

func (l *poisonLifecycle) AllocData(cat Category, capInt32s int) []int32 {
	arr := make([]int32, 0, capInt32s)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.allocs++
	l.live[&arr[:1][0]] = capInt32s
	return arr
}

func (l *poisonLifecycle) FreeData(cat Category, data []int32) {
	if data == nil {
		return
	}
	full := data[:cap(data)]
	l.mu.Lock()
	defer l.mu.Unlock()
	key := &full[0]
	if _, ok := l.live[key]; !ok {
		panic("poisonLifecycle: double free or foreign array")
	}
	delete(l.live, key)
	l.frees++
	for i := range full {
		full[i] = -0x5EED
	}
}

func (l *poisonLifecycle) Recat(from, to Category, bytes int64) {}

func (l *poisonLifecycle) outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}

// fillRelation creates a pool-allocated relation with n two-column tuples.
func fillRelation(lc Lifecycle, name string, n, seed int) *Relation {
	r := NewRelation(name, NumberedColumns(2))
	r.SetLifecycle(lc, CatIntermediate)
	rows := make([]int32, 0, 2*n)
	for i := 0; i < n; i++ {
		rows = append(rows, int32(seed+i), int32(seed+2*i))
	}
	r.AppendRows(rows)
	return r
}

// The PR 2 aliasing audit: block-adopting AppendRelation shares blocks
// between relations, so releasing one must not free (and poison) data the
// other still scans, and releasing both must free each block exactly once.
func TestAppendRelationSharedBlocksSurviveRelease(t *testing.T) {
	lc := newPoisonLifecycle()
	src := fillRelation(lc, "src", 5000, 1)
	want := src.SortedRows()

	dst := NewRelation("dst", NumberedColumns(2))
	dst.SetLifecycle(lc, CatIntermediate)
	dst.AppendRelation(src)

	src.Release()
	if got := dst.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatal("dst lost or corrupted rows after src release")
	}
	dst.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked after releasing both relations", n)
	}
}

// AdoptPartitioned relations alias their carried view's blocks from the flat
// list; releasing such a relation must free every scatter block exactly once
// (the double-ownership the single carried-store in partitionRelation
// guards against).
func TestAdoptPartitionedReleaseFreesOnce(t *testing.T) {
	lc := newPoisonLifecycle()
	parts := 8
	blocks := make([][]*Block, parts)
	var all []int32
	for p := 0; p < parts; p++ {
		b := NewBlockIn(lc, CatDelta, 2, 16)
		for i := 0; i < 100; i++ {
			row := []int32{int32(p), int32(i)}
			b.Append(row)
			all = append(all, row...)
		}
		blocks[p] = []*Block{b}
	}
	r := NewRelation("r", NumberedColumns(2))
	r.SetLifecycle(lc, CatIDB)
	r.AdoptPartitioned(NewPartitionedView(AllCols(2), parts, blocks))
	if r.NumTuples() != parts*100 {
		t.Fatalf("adopted %d tuples, want %d", r.NumTuples(), parts*100)
	}
	r.Release() // poisonLifecycle panics on double free
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked", n)
	}
}

// A carried-view merge chain (R ← R ⊎ ∆R across iterations) followed by
// releases in engine order: each ∆R is released after adoption, R last.
// Contents must stay intact throughout and no array may leak or double-free.
func TestCarriedMergeReleaseChain(t *testing.T) {
	lc := newPoisonLifecycle()
	parts := 4
	r := NewRelation("r", NumberedColumns(2))
	r.SetLifecycle(lc, CatIDB)

	var want []int32
	var prevDelta *Relation
	for iter := 0; iter < 20; iter++ {
		blocks := make([][]*Block, parts)
		for p := 0; p < parts; p++ {
			b := NewBlockIn(lc, CatDelta, 2, 4)
			for i := 0; i < 10; i++ {
				row := []int32{int32(iter), int32(p*100 + i)}
				b.Append(row)
				want = append(want, row...)
			}
			blocks[p] = []*Block{b}
		}
		delta := NewRelation("delta", NumberedColumns(2))
		delta.SetLifecycle(lc, CatDelta)
		delta.AdoptPartitioned(NewPartitionedView(AllCols(2), parts, blocks))
		r.AppendRelation(delta)
		// Engine epoch: the previous iteration's ∆R dies once the new one
		// is installed.
		if prevDelta != nil {
			prevDelta.Release()
		}
		prevDelta = delta
		r.ReclaimRetired()
		r.CoalescePartitions()
	}
	if prevDelta != nil {
		prevDelta.Release()
	}

	got := r.SortedRows()
	wantRel := NewRelation("want", NumberedColumns(2))
	wantRel.AppendRows(want)
	if !reflect.DeepEqual(got, wantRel.SortedRows()) {
		t.Fatal("merge chain corrupted relation contents")
	}
	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked", n)
	}
}

// Run under -race (CI does): releasing a source relation while concurrent
// readers scan a destination that shares its blocks must be safe — the
// destination's references keep the blocks alive, and recycled arrays are
// poisoned so a premature free would corrupt visibly.
func TestConcurrentSharedReleaseRace(t *testing.T) {
	lc := newPoisonLifecycle()
	src := fillRelation(lc, "src", 20000, 7)
	want := src.NumTuples()

	dst := NewRelation("dst", NumberedColumns(2))
	dst.SetLifecycle(lc, CatIntermediate)
	dst.AppendRelation(src)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				n := 0
				dst.ForEach(func(tu []int32) {
					if tu[0] == -0x5EED {
						panic("read poisoned (freed) block memory")
					}
					n++
				})
				if n != want {
					panic("short read of shared relation")
				}
			}
		}()
	}
	// Release the source concurrently with the readers; churn fresh
	// allocations so any wrongly-freed array would be reused and poisoned.
	src.Release()
	for i := 0; i < 50; i++ {
		scratch := fillRelation(lc, "scratch", 500, 1000*i)
		scratch.Release()
	}
	wg.Wait()
	dst.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked", n)
	}
}
