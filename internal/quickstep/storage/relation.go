package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is a bag of fixed-arity int32 tuples stored in blocks. Appends are
// serialized by a mutex; scans take a snapshot of the block list and then read
// lock-free (sealed blocks are immutable). RecStep relations are bags at the
// storage level — set semantics are enforced by the dedup stage, exactly as in
// the paper (UNION ALL plus a separate dedup call).
//
// Block ownership: every block in the flat list holds one reference, as does
// every scatter-copy block owned on behalf of a cached partitioned view.
// Sharing blocks between relations (AppendRelation, the ⊎ of Algorithm 1)
// retains them, so releasing one holder never frees data another still scans.
// Release returns every owned block to its pool; ReclaimRetired sweeps
// superseded view copies at engine-chosen quiescent points.
type Relation struct {
	name     string
	colNames []string

	// lc/cat select where this relation's own appends allocate block memory
	// and which accounting category they charge. Adopted blocks keep the
	// lifecycle they were allocated with.
	lc  Lifecycle
	cat Category

	mu     sync.Mutex
	blocks []*Block
	open   *Block // tail block still accepting single-row appends, or nil
	rows   int
	// partViews caches radix-partitioned views per (key-set, partition
	// count); any mutation invalidates the whole cache. gen counts
	// mutations so a view built from an older snapshot is never cached
	// over newer contents.
	partViews map[string]*PartitionedView
	gen       uint64
	// live is the partitioning the relation *carries*: its contents are
	// exactly the concatenation of live's partitions. Unlike cached views,
	// it survives compatible partitioned appends (the block lists are merged
	// per partition), so a relation that accumulates partition-native deltas
	// never needs a re-scatter. Any flat mutation drops it.
	live *PartitionedView
	// sec is the *secondary* carried partitioning: a scatter copy of the
	// contents routed on a second keyset, maintained for predicates whose
	// recursive joins build on conflicting key columns (CSPA's valueFlow
	// joins on column 0 in some rules and column 1 in others). Unlike live,
	// its blocks duplicate the flat contents in a second physical layout and
	// are owned by the relation on behalf of the view — they are never part
	// of the flat list. Like live, it survives compatible partitioned
	// appends: when the appended relation carries a matching secondary view
	// (∆R exiting the dual-route delta step), the per-partition block lists
	// are merged by retaining the source's blocks. Any flat mutation, or a
	// compatible append whose source lacks the matching secondary, drops it
	// (the copy would silently go stale otherwise). Secondary views never
	// spill — under memory pressure they are the first eviction candidates
	// and are dropped whole (see DropSecondaryView).
	sec *PartitionedView
	// ownedView holds scatter-copy blocks owned on behalf of cached
	// (non-carried) views — data that duplicates the flat contents in a
	// different physical layout. retired holds owned blocks whose views were
	// superseded or invalidated; they may still be scanned by an in-flight
	// operator, so they are released only at ReclaimRetired/Release.
	ownedView []*Block
	retired   []*Block
	// Spill state (cold-partition eviction of the carried view); see spill.go.
	pager Pager
	slots map[int]*spillSlot
	touch []int64
	// faultErr is the first fault-read failure (first-wins, sticky): the
	// failed partition's data is unreachable, so the run must abort, but the
	// relation stays usable for its resident partitions in the meantime.
	faultErr error
}

// NewRelation creates an empty relation. colNames fixes the arity; names are
// used by the SQL binder to resolve qualified column references.
func NewRelation(name string, colNames []string) *Relation {
	if len(colNames) == 0 {
		panic("storage: relation needs at least one column")
	}
	return &Relation{name: name, colNames: append([]string(nil), colNames...)}
}

// SetLifecycle routes the relation's future block allocations through lc,
// charged to cat. Blocks appended before the call keep their original
// lifecycle. Blocks of a different category adopted later (e.g. ∆R blocks
// entering an IDB relation) are re-categorized to cat.
func (r *Relation) SetLifecycle(lc Lifecycle, cat Category) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lc, r.cat = lc, cat
}

// NumberedColumns returns n column names c0..c(n-1), for relations whose
// attribute names are irrelevant (temporaries, deltas).
func NumberedColumns(n int) []string {
	cols := make([]string, n)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	return cols
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.colNames) }

// ColNames returns the attribute names. Read-only.
func (r *Relation) ColNames() []string { return r.colNames }

// ColIndex returns the position of the named column, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.colNames {
		if c == name {
			return i
		}
	}
	return -1
}

// NumTuples returns the current tuple count, including spilled partitions.
func (r *Relation) NumTuples() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rows
}

// Blocks returns a snapshot of the block list. The open tail block is sealed
// first so every returned block is immutable; spilled partitions are faulted
// back in (a flat scan touches the whole relation).
func (r *Relation) Blocks() []*Block {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealLocked()
	r.faultAllLocked()
	out := make([]*Block, len(r.blocks))
	copy(out, r.blocks)
	return out
}

func (r *Relation) sealLocked() {
	if r.open != nil {
		r.open = nil
	}
}

// adoptCategoryLocked folds a foreign block into this relation's accounting
// category (∆R blocks adopted into R become IDB bytes).
func (r *Relation) adoptCategoryLocked(b *Block) {
	if r.cat != CatIntermediate {
		b.Recat(r.cat)
	}
}

// Append adds a single tuple.
func (r *Relation) Append(tuple []int32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(tuple) != len(r.colNames) {
		panic(fmt.Sprintf("storage: tuple arity %d does not match relation %q arity %d", len(tuple), r.name, len(r.colNames)))
	}
	r.faultAllLocked()
	if r.open == nil || r.open.Full() {
		r.open = NewBlockIn(r.lc, r.cat, len(r.colNames), 0)
		r.blocks = append(r.blocks, r.open)
	}
	r.open.Append(tuple)
	r.rows++
	r.invalidatePartitionsLocked()
}

// BlocksFromRows packs row-major tuple data into sealed blocks of at most
// DefaultBlockRows rows each, allocated through lc under cat. The single
// block-splitting implementation behind AppendRows and the partition-native
// emitters (the aggregate merge's per-partition ∆R blocks).
func BlocksFromRows(lc Lifecycle, cat Category, arity int, rows []int32) []*Block {
	if len(rows)%arity != 0 {
		panic(fmt.Sprintf("storage: row data length %d not divisible by arity %d", len(rows), arity))
	}
	var out []*Block
	stride := arity * DefaultBlockRows
	for off := 0; off < len(rows); off += stride {
		end := off + stride
		if end > len(rows) {
			end = len(rows)
		}
		b := NewBlockIn(lc, cat, arity, (end-off)/arity)
		b.AppendBulk(rows[off:end])
		out = append(out, b)
	}
	return out
}

// AppendRows bulk-appends row-major tuple data, splitting it into blocks. The
// data is copied.
func (r *Relation) AppendRows(rows []int32) {
	arity := len(r.colNames)
	if len(rows)%arity != 0 {
		panic(fmt.Sprintf("storage: row data length %d not divisible by arity %d", len(rows), arity))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealLocked()
	r.faultAllLocked()
	r.blocks = append(r.blocks, BlocksFromRows(r.lc, r.cat, arity, rows)...)
	r.rows += len(rows) / arity
	r.invalidatePartitionsLocked()
}

// AdoptBlock appends a block without copying. The caller relinquishes
// ownership; the block must not be mutated afterwards. Empty blocks are
// released back to their pool immediately.
func (r *Relation) AdoptBlock(b *Block) {
	if b.Arity() != len(r.colNames) {
		panic(fmt.Sprintf("storage: block arity %d does not match relation %q arity %d", b.Arity(), r.name, len(r.colNames)))
	}
	if b.Rows() == 0 {
		b.Release()
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealLocked()
	r.faultAllLocked()
	r.adoptCategoryLocked(b)
	r.blocks = append(r.blocks, b)
	r.rows += b.Rows()
	r.invalidatePartitionsLocked()
}

// AppendRelation appends all tuples of other by sharing its (sealed) blocks.
// This implements R ← R ⊎ ∆R from Algorithm 1 in O(blocks). When both sides
// carry the same partitioning (or the destination is empty and the source
// carries one), the per-partition block lists are merged and the destination
// keeps carrying that partitioning — the block-adopting append that lets the
// fixpoint loop install partition-native deltas without a re-scatter. Shared
// blocks are retained by the destination, so either relation can be released
// without freeing data the other still holds.
func (r *Relation) AppendRelation(other *Relation) {
	if other.Arity() != r.Arity() {
		panic(fmt.Sprintf("storage: arity mismatch appending %q to %q", other.name, r.name))
	}
	blocks, view, secView := other.snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealLocked()
	wasEmpty := r.rows == 0
	mergeable := view != nil &&
		(wasEmpty || (r.live != nil && r.live.Partitioning().Equal(view.Partitioning())))
	if !mergeable {
		// The merge below keeps spill slots valid (partition indexing is
		// preserved); any other append is a flat mutation and must restore
		// spilled partitions before the carried view is dropped.
		r.faultAllLocked()
	}
	for _, b := range blocks {
		if b.Rows() == 0 {
			continue
		}
		b.Retain()
		r.adoptCategoryLocked(b)
		r.blocks = append(r.blocks, b)
		r.rows += b.Rows()
	}
	switch {
	case mergeable && wasEmpty:
		// Clone rather than share the view object: the destination's spill
		// and ownership state must never alias another relation's (the PR 2
		// aliasing audit — a shared view object would let one relation's
		// release or spill mutate the other's carried partitioning).
		r.installLiveLocked(view.clone())
		r.adoptSecondaryLocked(secView)
	case mergeable:
		r.installLiveLocked(mergeViews(r.live, view))
		r.mergeSecondaryLocked(secView)
	default:
		r.invalidatePartitionsLocked()
	}
}

// snapshot returns the sealed block list plus the carried primary and
// secondary partitioned views (nil if none), all consistent with each other.
// Spilled partitions are faulted back first: the caller is about to scan (or
// share) the whole contents.
func (r *Relation) snapshot() ([]*Block, *PartitionedView, *PartitionedView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealLocked()
	r.faultAllLocked()
	out := make([]*Block, len(r.blocks))
	copy(out, r.blocks)
	return out, r.live, r.sec
}

// AdoptPartitioned installs a partitioned view's blocks as the relation's
// contents without copying and carries the view's partitioning. The relation
// must be empty; the caller relinquishes ownership of the view's blocks (the
// flat list takes their references, the view becomes an alias of the flat
// contents).
func (r *Relation) AdoptPartitioned(v *PartitionedView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rows != 0 || len(r.blocks) != 0 {
		panic(fmt.Sprintf("storage: AdoptPartitioned into non-empty relation %q", r.name))
	}
	for p := 0; p < v.Parts(); p++ {
		for _, b := range v.Blocks(p) {
			if b.Rows() == 0 {
				continue
			}
			r.adoptCategoryLocked(b)
			r.blocks = append(r.blocks, b)
			r.rows += b.Rows()
		}
	}
	r.installLiveLocked(v)
}

// Partitioning returns the partitioning the relation currently carries.
func (r *Relation) Partitioning() (Partitioning, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live == nil {
		return Partitioning{}, false
	}
	return r.live.Partitioning(), true
}

// SecondaryPartitioning returns the partitioning of the secondary carried
// view, if one is attached.
func (r *Relation) SecondaryPartitioning() (Partitioning, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sec == nil {
		return Partitioning{}, false
	}
	return r.sec.Partitioning(), true
}

// CarriedView returns the carried partitioned view — primary or secondary —
// matching the wanted partitioning: the short-circuit consulted before any
// scatter.
func (r *Relation) CarriedView(keyCols []int, parts int) (*PartitionedView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	want := Partitioning{KeyCols: keyCols, Parts: parts}
	if r.live != nil && r.live.Partitioning().Equal(want) {
		return r.live, true
	}
	if r.sec != nil && r.sec.Partitioning().Equal(want) {
		return r.sec, true
	}
	return nil, false
}

// Generation returns the relation's current mutation generation, to pair
// with the gen-guarded Store*View calls (a store built from an older snapshot
// is refused if a mutation interleaved).
func (r *Relation) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// installLiveLocked replaces the carried view and resets the cache to hold
// exactly it: the mutation generation advances (so stale in-flight view
// builds are refused) while lookups for the carried key still hit. The
// previous live view's blocks stay owned by the flat list (views installed
// here alias the flat contents), so nothing is released.
func (r *Relation) installLiveLocked(v *PartitionedView) {
	r.gen++
	if r.live != nil && r.live != v {
		r.live.owner = nil
	}
	r.live = v
	v.owner = r
	r.partViews = map[string]*PartitionedView{partitionKey(v.keyCols, v.parts): v}
	r.resizeTouchLocked(v.parts)
}

// adoptSecondaryLocked installs a clone of an appended-from-empty source's
// secondary view, retaining its blocks: the destination becomes an
// independent co-owner of the second-layout scatter copies, so releasing the
// source never frees data the destination still serves builds from.
func (r *Relation) adoptSecondaryLocked(v *PartitionedView) {
	r.retireSecondaryLocked()
	if v == nil {
		return
	}
	c := v.clone()
	for p := range c.blocks {
		for _, b := range c.blocks[p] {
			b.Retain()
			r.adoptCategoryLocked(b)
		}
	}
	r.sec = c
}

// mergeSecondaryLocked extends the secondary carried view with the appended
// relation's matching secondary view (∆R exiting the dual-route delta step),
// retaining the source's blocks. A source without a matching secondary view
// forces the destination to drop its own — keeping it would silently serve
// stale contents to later builds.
func (r *Relation) mergeSecondaryLocked(v *PartitionedView) {
	if r.sec == nil {
		return
	}
	if v == nil || !r.sec.Partitioning().Equal(v.Partitioning()) {
		r.retireSecondaryLocked()
		return
	}
	for p := range v.blocks {
		for _, b := range v.blocks[p] {
			b.Retain()
			r.adoptCategoryLocked(b)
		}
	}
	r.sec = mergeViews(r.sec, v)
}

// retireSecondaryLocked detaches the secondary carried view, moving its
// scatter-copy blocks to the retired list (an in-flight build may still scan
// them; they are recycled at the next quiescent ReclaimRetired).
func (r *Relation) retireSecondaryLocked() {
	if r.sec == nil {
		return
	}
	r.retireViewBlocksLocked(r.sec)
	r.sec = nil
}

// DropSecondaryView detaches the secondary carried view, if any, reporting
// whether one existed. The memory manager's eviction policy calls it first —
// before any primary partition spills to disk — because a secondary view is
// pure redundancy: dropping it costs at most one future re-scatter, while
// spilling a primary partition costs a disk write plus a fault. The blocks
// are retired, not freed; the caller reclaims them at a quiescent point via
// ReclaimRetired.
func (r *Relation) DropSecondaryView() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sec == nil {
		return false
	}
	r.retireSecondaryLocked()
	return true
}

// TryDropSecondaryView is DropSecondaryView with TryLock semantics, for the
// memory manager's mid-query reclaim path: the reclaimer may be running
// under an allocation that already holds this relation's mutex, so blocking
// here would deadlock. The blocks are retired, not freed — an in-flight
// build may still scan the view object it already obtained — and are
// recycled at the next quiescent ReclaimRetired; the immediate headroom
// still comes from partition spilling, but the redundant copy is gone from
// the working set one epoch later and is never rebuilt while pressure lasts.
func (r *Relation) TryDropSecondaryView() bool {
	if !r.mu.TryLock() {
		return false
	}
	defer r.mu.Unlock()
	if r.sec == nil {
		return false
	}
	r.retireSecondaryLocked()
	return true
}

// Clear drops all tuples, releasing every owned block and dropping any
// spilled partition files.
func (r *Relation) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropSlotsLocked()
	for _, b := range r.blocks {
		b.Release()
	}
	r.blocks, r.open, r.rows = nil, nil, 0
	r.invalidatePartitionsLocked()
	r.reclaimRetiredLocked()
}

// Release frees every block the relation owns — flat contents, scatter
// copies owned on behalf of cached views, retired view copies and spilled
// partition files — returning pool-allocated arrays for recycling. The
// relation is empty afterwards. Blocks shared with other relations survive
// (their references keep them alive); the caller must be the last reader of
// blocks exclusive to this relation.
func (r *Relation) Release() {
	r.Clear()
}

// Restore faults every spilled partition back into memory. The engine calls
// it on result relations before their database — and with it the spill
// directory — is closed.
func (r *Relation) Restore() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faultAllLocked()
}

// ReclaimRetired releases retired scatter-copy blocks (superseded or
// invalidated partitioned views). The engine calls it at iteration
// boundaries, when no operator can still hold a view built before the
// mutation that retired them.
func (r *Relation) ReclaimRetired() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reclaimRetiredLocked()
}

// reclaimRetiredLocked releases retired blocks only. Blocks in ownedView are
// still referenced by live cache entries (an EDB's join-key views are reused
// every iteration); they reach the retired list when the cache drops them.
func (r *Relation) reclaimRetiredLocked() {
	for _, b := range r.retired {
		b.Release()
	}
	r.retired = nil
}

// Rows materializes every tuple into one row-major slice. Intended for tests,
// small results and commit serialization.
func (r *Relation) Rows() []int32 {
	blocks := r.Blocks()
	total := 0
	for _, b := range blocks {
		total += len(b.data)
	}
	out := make([]int32, 0, total)
	for _, b := range blocks {
		out = append(out, b.data...)
	}
	return out
}

// ForEach invokes fn for every tuple. The slice passed to fn aliases block
// memory and is only valid during the call.
func (r *Relation) ForEach(fn func(tuple []int32)) {
	for _, b := range r.Blocks() {
		n := b.Rows()
		for i := 0; i < n; i++ {
			fn(b.Row(i))
		}
	}
}

// SortedRows returns all tuples sorted lexicographically, one row-major
// slice. Useful for deterministic comparisons in tests and output writers.
func (r *Relation) SortedRows() []int32 {
	arity := r.Arity()
	data := r.Rows()
	n := len(data) / arity
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := data[idx[a]*arity:idx[a]*arity+arity], data[idx[b]*arity:idx[b]*arity+arity]
		for k := 0; k < arity; k++ {
			if ra[k] != rb[k] {
				return ra[k] < rb[k]
			}
		}
		return false
	})
	out := make([]int32, 0, len(data))
	for _, i := range idx {
		out = append(out, data[i*arity:i*arity+arity]...)
	}
	return out
}

// EstimatedBytes reports the in-memory footprint of tuple data.
func (r *Relation) EstimatedBytes() int64 {
	return int64(r.NumTuples()) * int64(r.Arity()) * 4
}
