package storage

import (
	"reflect"
	"testing"
)

// scatterRows builds a partitioned view by routing each two-column row of
// rows to its radix partition of (keyCols, parts), allocating through lc.
func scatterRows(lc Lifecycle, cat Category, rows []int32, keyCols []int, parts int) *PartitionedView {
	blocks := make([][]*Block, parts)
	open := make([]*Block, parts)
	for off := 0; off < len(rows); off += 2 {
		row := rows[off : off+2]
		p := PartitionOf(PartitionHash(row, keyCols), parts)
		if open[p] == nil || open[p].Full() {
			open[p] = NewBlockIn(lc, cat, 2, 0)
			blocks[p] = append(blocks[p], open[p])
		}
		open[p].Append(row)
	}
	return NewPartitionedView(keyCols, parts, blocks)
}

// deltaLike builds a relation the way DeltaStepDual leaves ∆R: carrying a
// primary partitioning on primCols and a secondary scatter copy on secCols.
func deltaLike(lc Lifecycle, name string, rows []int32, primCols, secCols []int, parts int) *Relation {
	r := NewRelation(name, NumberedColumns(2))
	r.SetLifecycle(lc, CatDelta)
	r.AdoptPartitioned(scatterRows(lc, CatDelta, rows, primCols, parts))
	r.StoreSecondaryView(scatterRows(lc, CatDelta, rows, secCols, parts), r.Generation())
	return r
}

func TestStoreSecondaryViewLookups(t *testing.T) {
	lc := newPoisonLifecycle()
	rows := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	r := deltaLike(lc, "d", rows, []int{0}, []int{1}, 4)

	if p, ok := r.Partitioning(); !ok || !p.Equal(Partitioning{KeyCols: []int{0}, Parts: 4}) {
		t.Fatalf("primary partitioning = %v, %v", p, ok)
	}
	if p, ok := r.SecondaryPartitioning(); !ok || !p.Equal(Partitioning{KeyCols: []int{1}, Parts: 4}) {
		t.Fatalf("secondary partitioning = %v, %v", p, ok)
	}
	if _, ok := r.CarriedView([]int{0}, 4); !ok {
		t.Fatal("primary keyset not served by CarriedView")
	}
	sv, ok := r.CarriedView([]int{1}, 4)
	if !ok {
		t.Fatal("secondary keyset not served by CarriedView")
	}
	// The secondary view holds every tuple exactly once, routed on its own
	// keyset.
	total := 0
	for p := 0; p < sv.Parts(); p++ {
		for _, b := range sv.Blocks(p) {
			n := b.Rows()
			total += n
			for i := 0; i < n; i++ {
				if got := PartitionOf(PartitionHash(b.Row(i), []int{1}), 4); got != p {
					t.Fatalf("secondary row %v in partition %d, routes to %d", b.Row(i), p, got)
				}
			}
		}
	}
	if total != len(rows)/2 {
		t.Fatalf("secondary view holds %d tuples, want %d", total, len(rows)/2)
	}
	if _, ok := r.CarriedView([]int{1}, 8); ok {
		t.Fatal("mismatched fan-out must not be served")
	}

	// A store duplicating the primary routing is refused (and its blocks
	// retired, not leaked).
	r.StoreSecondaryView(scatterRows(lc, CatDelta, rows, []int{0}, 4), r.Generation())
	if p, _ := r.SecondaryPartitioning(); !KeyColsEqual(p.KeyCols, []int{1}) {
		t.Fatalf("duplicate-routing store replaced the secondary: %v", p)
	}
	// A stale store (mutation interleaved) is refused too.
	stale := r.Generation()
	r.Append([]int32{9, 10})
	r.StoreSecondaryView(scatterRows(lc, CatDelta, rows, []int{1}, 4), stale)
	if _, ok := r.SecondaryPartitioning(); ok {
		t.Fatal("stale secondary store accepted (and flat mutation should have dropped the old one)")
	}

	r.ReclaimRetired()
	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked", n)
	}
}

func TestAppendRelationMaintainsSecondaryView(t *testing.T) {
	lc := newPoisonLifecycle()
	prim, sec := []int{0}, []int{1}
	d1 := deltaLike(lc, "d1", []int32{1, 2, 3, 4}, prim, sec, 4)
	d2 := deltaLike(lc, "d2", []int32{5, 6, 7, 8}, prim, sec, 4)
	d3 := NewRelation("d3", NumberedColumns(2)) // no secondary
	d3.SetLifecycle(lc, CatDelta)
	d3.AdoptPartitioned(scatterRows(lc, CatDelta, []int32{9, 10}, prim, 4))

	r := NewRelation("r", NumberedColumns(2))
	r.SetLifecycle(lc, CatIDB)

	// Empty-destination append adopts a clone of the source's secondary.
	r.AppendRelation(d1)
	if _, ok := r.CarriedView(sec, 4); !ok {
		t.Fatal("append into empty relation did not adopt the secondary view")
	}
	// Compatible append merges it.
	r.AppendRelation(d2)
	sv, ok := r.CarriedView(sec, 4)
	if !ok {
		t.Fatal("compatible append dropped the secondary view")
	}
	if n := sv.NumTuples(); n != 4 {
		t.Fatalf("merged secondary view holds %d tuples, want 4", n)
	}
	// Releasing the sources must not free data r still serves: the merge
	// retained the shared blocks.
	d1.Release()
	d2.Release()
	if got := r.SortedRows(); !reflect.DeepEqual(got, []int32{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("contents after source release: %v", got)
	}
	sv, _ = r.CarriedView(sec, 4)
	total := 0
	for p := 0; p < sv.Parts(); p++ {
		for _, b := range sv.Blocks(p) {
			total += b.Rows()
		}
	}
	if total != 4 {
		t.Fatalf("secondary view corrupted by source release: %d tuples", total)
	}

	// A compatible append whose source lacks the secondary drops it — the
	// copy would be stale otherwise.
	r.AppendRelation(d3)
	if _, ok := r.CarriedView(sec, 4); ok {
		t.Fatal("append without matching secondary left a stale secondary view")
	}
	if _, ok := r.CarriedView(prim, 4); !ok {
		t.Fatal("primary carried view should survive the merge")
	}

	d3.Release()
	r.ReclaimRetired()
	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked", n)
	}
}

func TestDropSecondaryViewRetiresBlocks(t *testing.T) {
	lc := newPoisonLifecycle()
	r := deltaLike(lc, "r", []int32{1, 2, 3, 4, 5, 6}, []int{0}, []int{1}, 4)
	want := r.SortedRows()

	if !r.DropSecondaryView() {
		t.Fatal("DropSecondaryView found nothing to drop")
	}
	if r.DropSecondaryView() {
		t.Fatal("second drop should be a no-op")
	}
	if _, ok := r.SecondaryPartitioning(); ok {
		t.Fatal("secondary still reported after drop")
	}
	before := lc.outstanding()
	r.ReclaimRetired()
	if lc.outstanding() >= before {
		t.Fatal("retired secondary blocks were not recycled")
	}
	// The primary contents are untouched.
	if got := r.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("contents changed by secondary drop: %v != %v", got, want)
	}
	if _, ok := r.CarriedView([]int{0}, 4); !ok {
		t.Fatal("primary carried view lost")
	}
	r.Release()
	if n := lc.outstanding(); n != 0 {
		t.Fatalf("%d arrays leaked", n)
	}
}
