package storage

import "fmt"

// Cold-partition spilling. When the memory manager's budget is exceeded, it
// evicts partitions of relations that carry a live partitioned view — the
// full recursive relations R of the fixpoint loop — to temp files, LRU by
// the epoch (fixpoint iteration) in which the partition was last probed.
// Access through PartitionedView.Blocks faults a spilled partition back in
// transparently, so operators never see the difference. The policy (what and
// when to evict) lives in internal/quickstep/memory; this file holds the
// storage-side mechanics.

// Pager is implemented by the memory manager: it persists a partition's
// blocks, restores them, and supplies the LRU epoch clock.
type Pager interface {
	// Epoch returns the current reclamation epoch (the engine advances it
	// once per fixpoint iteration). Partitions touched in the current epoch
	// are part of the working set and are never evicted.
	Epoch() int64
	// SpillBlocks persists the blocks of one partition and returns an opaque
	// token plus the number of bytes written.
	SpillBlocks(arity int, blocks []*Block) (token any, bytes int64, err error)
	// FaultBlocks restores a spilled partition, allocating block memory
	// through lc under cat, and invalidates the token.
	FaultBlocks(token any, lc Lifecycle, cat Category, arity int) ([]*Block, error)
	// DropSpill discards a spilled partition that will never be faulted
	// (relation cleared or released).
	DropSpill(token any)
}

// spillSlot records one evicted partition of the carried view. faulting/done
// coordinate concurrent readers: the first reader faults the partition with
// the relation unlocked (so the allocation path can spill *other* partitions
// to stay under budget), later readers wait on done.
type spillSlot struct {
	token    any
	rows     int
	bytes    int64
	faulting bool
	done     chan struct{}
}

// EnableSpill makes the relation's carried-view partitions evictable through
// pg. Only relations registered this way ever spill; everything else keeps
// today's purely in-memory behaviour.
func (r *Relation) EnableSpill(pg Pager) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pager = pg
	if r.live != nil {
		r.resizeTouchLocked(r.live.parts)
	}
}

// resizeTouchLocked (re)builds the per-partition last-touch epochs when a
// carried view is (re)installed. A same-fan-out reinstall (the per-iteration
// merge) keeps the recorded touches — including explicit cooling — while a
// fan-out change starts fresh with every partition counting as touched now
// (just materialized, so working set by definition).
func (r *Relation) resizeTouchLocked(parts int) {
	if r.pager == nil {
		return
	}
	if len(r.touch) == parts {
		return
	}
	now := r.pager.Epoch()
	r.touch = make([]int64, parts)
	for i := range r.touch {
		r.touch[i] = now
	}
}

// partitionBlocks is the owner-routed access path for a carried view:
// records the LRU touch and faults the partition back in if it was spilled.
func (r *Relation) partitionBlocks(v *PartitionedView, p int) []*Block {
	if r.pager == nil {
		return v.blocks[p]
	}
	r.mu.Lock()
	if v != r.live {
		// Superseded view object still held by an in-flight operator: its
		// block lists were never spilled (spilling requires being live).
		r.mu.Unlock()
		return v.blocks[p]
	}
	if p < len(r.touch) {
		r.touch[p] = r.pager.Epoch()
	}
	for {
		slot, ok := r.slots[p]
		if !ok {
			break
		}
		if r.faultErr != nil {
			// A fault already failed on this relation: the run is aborting
			// (the pager reported the failure as the run error), so don't
			// keep re-reading a broken spill file. Serve resident blocks.
			break
		}
		if slot.faulting {
			// Another reader is restoring this partition; wait for it.
			ch := slot.done
			r.mu.Unlock()
			<-ch
			r.mu.Lock()
			continue
		}
		slot.faulting = true
		slot.done = make(chan struct{})
		// Read the spill file and allocate its blocks with the relation
		// unlocked: the allocations may push the manager over budget, and
		// reclaiming then needs this relation's mutex to spill *other*
		// (already cooled) partitions.
		r.mu.Unlock()
		blocks, err := r.pager.FaultBlocks(slot.token, r.lc, r.cat, len(r.colNames))
		r.mu.Lock()
		if err != nil {
			// Environmental failure, not an invariant violation: record it
			// (first-wins), roll the slot back to "spilled, idle" so waiters
			// are not stranded, and serve the resident blocks. The pager has
			// already escalated the error to the run; the partition's data
			// stays on disk, and the relation's *other* partitions remain
			// fully usable.
			r.noteFaultErrLocked(err)
			slot.faulting = false
			close(slot.done)
			break
		}
		delete(r.slots, p)
		// r.live may have been merge-replaced meanwhile; partition indexing
		// is preserved by merges, so install into the current live view.
		r.live.blocks[p] = append(blocks, r.live.blocks[p]...)
		r.blocks = append(r.blocks, blocks...)
		close(slot.done)
		break
	}
	blocks := r.live.blocks[p]
	r.mu.Unlock()
	return blocks
}

// faultAllLocked restores every spilled partition — the prelude to any flat
// scan or flat mutation. A flat scan can race *partition* reads of the same
// relation: UNION ALL branches run concurrently, and with join-key-carried
// partitionings one branch's hash build faults individual partitions (via
// partitionBlocks) while another branch flat-scans the relation as its probe
// side. A slot found mid-fault is therefore waited out — the faulting reader
// installs the blocks and closes slot.done — rather than treated as a
// protocol violation.
func (r *Relation) faultAllLocked() {
	if r.pager == nil {
		return
	}
	// A flat scan reads every partition: mark them all hot even when nothing
	// is currently spilled, or the reclaimer would evict blocks out from
	// under the running scan.
	now := r.pager.Epoch()
	for i := range r.touch {
		r.touch[i] = now
	}
	for len(r.slots) > 0 {
		if r.faultErr != nil {
			// A fault already failed: don't keep hammering a broken spill
			// path. The remaining slots stay on disk; the flat mutation that
			// follows disposes of them through invalidatePartitionsLocked's
			// fault-error branch, and the run is aborting regardless.
			return
		}
		var inFlight chan struct{}
		for _, slot := range r.slots {
			if slot.faulting {
				inFlight = slot.done
				break
			}
		}
		if inFlight != nil {
			r.mu.Unlock()
			<-inFlight
			r.mu.Lock()
			continue // the slot map changed under us; re-scan
		}
		for p, slot := range r.slots {
			blocks, err := r.pager.FaultBlocks(slot.token, r.lc, r.cat, len(r.colNames))
			if err != nil {
				// Record and stop; the failed slot stays spilled. See the
				// identical branch in partitionBlocks.
				r.noteFaultErrLocked(err)
				return
			}
			delete(r.slots, p)
			r.live.blocks[p] = append(blocks, r.live.blocks[p]...)
			r.blocks = append(r.blocks, blocks...)
		}
	}
}

// noteFaultErrLocked records the first fault-read failure (first-wins).
// Callers hold r.mu.
func (r *Relation) noteFaultErrLocked(err error) {
	if r.faultErr == nil {
		r.faultErr = fmt.Errorf("storage: faulting spilled partition of %q: %w", r.name, err)
	}
}

// FaultError reports the first fault-read failure recorded on this relation,
// nil if none. A relation with a fault error still serves every resident
// partition; only the partitions whose spill files could not be restored are
// unreachable.
func (r *Relation) FaultError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faultErr
}

// Cool marks partition p of a carried view evictable again: the reader that
// faulted it declares it is done with the partition's blocks for this
// iteration. The fused delta step cools each of R's partitions as soon as
// its per-partition pass completes, so a budget-pressed run keeps only the
// in-flight partitions resident instead of re-pinning all of R every
// iteration.
func (v *PartitionedView) Cool(p int) {
	r := v.owner
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v != r.live || r.pager == nil || p >= len(r.touch) {
		return
	}
	r.touch[p] = r.pager.Epoch() - 1
}

// dropSlotsLocked discards all spilled partitions without restoring them
// (the data is being destroyed anyway).
func (r *Relation) dropSlotsLocked() {
	for _, slot := range r.slots {
		r.pager.DropSpill(slot.token)
	}
	r.slots = nil
}

// spillableBlocksLocked returns the subset of partition p's resident blocks
// that can be evicted: exclusively owned by this relation. Shared blocks
// (refs > 1 — typically the newest ∆R blocks, still referenced by the delta
// table until the engine's next epoch release) stay resident: spilling them
// would free nothing while duplicating state on disk.
func (r *Relation) spillableBlocksLocked(p int) (evict []*Block, bytes int64) {
	for _, b := range r.live.blocks[p] {
		if b.Refs() == 1 {
			evict = append(evict, b)
			bytes += b.CapBytes()
		}
	}
	return evict, bytes
}

// ColdestPartition reports the least-recently-touched partition eligible for
// eviction: not already spilled, not touched in the current epoch, and with
// exclusively-owned resident blocks worth freeing. Returns ok=false when
// nothing is evictable — including when the relation's mutex is contended,
// since the reclaimer must never block an allocation path that may already
// hold it.
func (r *Relation) ColdestPartition(curEpoch int64) (part int, lastTouch int64, bytes int64, ok bool) {
	if !r.mu.TryLock() {
		return 0, 0, 0, false
	}
	defer r.mu.Unlock()
	if r.pager == nil || r.live == nil {
		return 0, 0, 0, false
	}
	best := -1
	var bestTouch int64
	var bestBytes int64
	for p := 0; p < r.live.parts; p++ {
		if _, spilled := r.slots[p]; spilled || len(r.live.blocks[p]) == 0 {
			continue
		}
		if p >= len(r.touch) || r.touch[p] >= curEpoch {
			continue
		}
		if best != -1 && r.touch[p] >= bestTouch {
			continue
		}
		_, sz := r.spillableBlocksLocked(p)
		if sz == 0 {
			continue
		}
		best, bestTouch, bestBytes = p, r.touch[p], sz
	}
	if best == -1 {
		return 0, 0, 0, false
	}
	return best, bestTouch, bestBytes, true
}

// SpillPartition evicts the exclusively-owned blocks of one partition of the
// carried view to the pager, releasing them. Returns the bytes freed. The
// caller should have picked the partition via ColdestPartition; the
// eligibility checks are re-validated under the lock (ok=false if the
// partition became hot, fully shared or contended in between).
func (r *Relation) SpillPartition(p int, pg Pager) (freed int64, ok bool) {
	if !r.mu.TryLock() {
		return 0, false
	}
	defer r.mu.Unlock()
	if r.pager != pg || r.live == nil || p >= r.live.parts {
		return 0, false
	}
	if _, spilled := r.slots[p]; spilled {
		return 0, false
	}
	if p < len(r.touch) && r.touch[p] >= pg.Epoch() {
		return 0, false
	}
	evict, _ := r.spillableBlocksLocked(p)
	if len(evict) == 0 {
		return 0, false
	}
	rows := 0
	for _, b := range evict {
		rows += b.Rows()
	}
	token, bytes, err := pg.SpillBlocks(len(r.colNames), evict)
	if err != nil {
		return 0, false
	}
	if r.slots == nil {
		r.slots = make(map[int]*spillSlot)
	}
	r.slots[p] = &spillSlot{token: token, rows: rows, bytes: bytes}
	// De-list the evicted blocks from the flat list and the partition, then
	// release them.
	inEvict := make(map[*Block]struct{}, len(evict))
	for _, b := range evict {
		inEvict[b] = struct{}{}
	}
	kept := r.blocks[:0]
	for _, b := range r.blocks {
		if _, drop := inEvict[b]; drop {
			continue
		}
		kept = append(kept, b)
	}
	r.blocks = kept
	resident := make([]*Block, 0, len(r.live.blocks[p])-len(evict))
	for _, b := range r.live.blocks[p] {
		if _, drop := inEvict[b]; drop {
			continue
		}
		resident = append(resident, b)
	}
	r.live.blocks[p] = resident
	var freedBytes int64
	for _, b := range evict {
		freedBytes += b.CapBytes()
		b.Release()
	}
	// r.rows is unchanged: NumTuples includes spilled tuples, exactly as the
	// optimizer's cardinality estimates require.
	return freedBytes, true
}

// Partition coalescing. A long fixpoint adopts one small ∆R block per
// partition per iteration; left alone, a partition becomes a list of
// hundreds of near-empty blocks whose pool-class padding dominates the
// relation's footprint. At epoch boundaries the engine coalesces each
// partition's small resident blocks into one; a coalesced block stops
// participating once it reaches coalesceSmallRows, so every tuple is copied
// O(coalesceSmallRows / (coalesceMinRun · |small block|)) times — constant —
// over the whole run.
const (
	// coalesceMinRun is the number of small blocks a partition accumulates
	// before a coalesce pass rewrites them.
	coalesceMinRun = 16
	// coalesceSmallRows is the row count above which a block is left alone.
	coalesceSmallRows = 1024
)

// CoalescePartitions rewrites partitions of the carried view that have
// accumulated many small blocks. Must run at a quiescent point (no operator
// holds block lists of this relation). Small blocks are detached under the
// lock, but the chunk allocation and copying run with the relation unlocked:
// the coalescer's own allocations may exceed the memory budget, and the
// reclaimer then needs this relation's mutex to evict cold partitions.
func (r *Relation) CoalescePartitions() {
	r.mu.Lock()
	if r.live == nil {
		r.mu.Unlock()
		return
	}
	arity := len(r.colNames)
	parts := r.live.parts
	r.mu.Unlock()

	// Merged chunks are capped well below a full block to bound the
	// transient footprint of one chunk-copy step.
	const chunkRows = 2 * coalesceSmallRows
	for p := 0; p < parts; p++ {
		// Detach this partition's exclusively-owned small blocks.
		r.mu.Lock()
		if r.live == nil || r.live.parts != parts {
			r.mu.Unlock()
			return
		}
		var smalls []*Block
		var keep []*Block
		for _, b := range r.live.blocks[p] {
			// Shared blocks (refs > 1 — the newest ∆R, still held by the
			// delta table) are left alone: copying them frees nothing while
			// the merged chunk adds net footprint. They become coalescable
			// one epoch later, when the engine releases the old delta table.
			if b.Rows() < coalesceSmallRows && b.Refs() == 1 {
				smalls = append(smalls, b)
			} else {
				keep = append(keep, b)
			}
		}
		if len(smalls) < coalesceMinRun {
			r.mu.Unlock()
			continue
		}
		r.live.blocks[p] = keep
		dropped := make(map[*Block]struct{}, len(smalls))
		for _, b := range smalls {
			dropped[b] = struct{}{}
		}
		kept := r.blocks[:0]
		for _, b := range r.blocks {
			if _, drop := dropped[b]; drop {
				continue
			}
			kept = append(kept, b)
		}
		r.blocks = kept
		r.mu.Unlock()

		// Copy into merged chunks and release originals, unlocked.
		rows := 0
		for _, b := range smalls {
			rows += b.Rows()
		}
		var merged []*Block
		var cur *Block
		for _, b := range smalls {
			if cur == nil || cur.Rows()+b.Rows() > chunkRows {
				if cur != nil {
					cur.Compact()
				}
				hint := rows
				if hint > chunkRows {
					hint = chunkRows
				}
				cur = NewBlockIn(r.lc, r.cat, arity, hint)
				merged = append(merged, cur)
			}
			cur.AppendBulk(b.Data())
			rows -= b.Rows()
			// Release as soon as the rows are copied, so the pass never
			// doubles more than one chunk's worth of data.
			b.Release()
		}
		if cur != nil {
			cur.Compact()
		}

		// Reattach the merged chunks.
		r.mu.Lock()
		if r.live != nil && r.live.parts == parts {
			r.live.blocks[p] = append(r.live.blocks[p], merged...)
			r.blocks = append(r.blocks, merged...)
		} else {
			for _, b := range merged {
				b.Release()
			}
		}
		r.mu.Unlock()
	}
	r.coalesceSecondary()
}

// coalesceSecondary applies the same small-block rewrite to the secondary
// carried view. Its partitions fragment exactly like the primary's — one
// small ∆R scatter block adopted per partition per iteration — but its
// blocks live outside the flat list, so the pass only rewrites the view's
// own lists. Same quiescence requirement as CoalescePartitions.
func (r *Relation) coalesceSecondary() {
	r.mu.Lock()
	if r.sec == nil {
		r.mu.Unlock()
		return
	}
	arity := len(r.colNames)
	parts := r.sec.parts
	r.mu.Unlock()

	const chunkRows = 2 * coalesceSmallRows
	for p := 0; p < parts; p++ {
		r.mu.Lock()
		if r.sec == nil || r.sec.parts != parts {
			r.mu.Unlock()
			return
		}
		var smalls []*Block
		var keep []*Block
		for _, b := range r.sec.blocks[p] {
			// Shared blocks (the newest ∆R secondary scatter, still held by
			// the delta table's own secondary view) are skipped, exactly as
			// in the primary pass.
			if b.Rows() < coalesceSmallRows && b.Refs() == 1 {
				smalls = append(smalls, b)
			} else {
				keep = append(keep, b)
			}
		}
		if len(smalls) < coalesceMinRun {
			r.mu.Unlock()
			continue
		}
		r.sec.blocks[p] = keep
		r.mu.Unlock()

		rows := 0
		for _, b := range smalls {
			rows += b.Rows()
		}
		var merged []*Block
		var cur *Block
		for _, b := range smalls {
			if cur == nil || cur.Rows()+b.Rows() > chunkRows {
				if cur != nil {
					cur.Compact()
				}
				hint := rows
				if hint > chunkRows {
					hint = chunkRows
				}
				cur = NewBlockIn(r.lc, r.cat, arity, hint)
				merged = append(merged, cur)
			}
			cur.AppendBulk(b.Data())
			rows -= b.Rows()
			b.Release()
		}
		if cur != nil {
			cur.Compact()
		}

		r.mu.Lock()
		if r.sec != nil && r.sec.parts == parts {
			r.sec.blocks[p] = append(r.sec.blocks[p], merged...)
		} else {
			for _, b := range merged {
				b.Release()
			}
		}
		r.mu.Unlock()
	}
}

// SpilledPartitions reports how many partitions are currently on disk.
func (r *Relation) SpilledPartitions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots)
}
