package storage

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockAppendAndRow(t *testing.T) {
	b := NewBlock(2)
	b.Append([]int32{1, 2})
	b.Append([]int32{3, 4})
	if got := b.Rows(); got != 2 {
		t.Fatalf("Rows() = %d, want 2", got)
	}
	if got := b.Row(1); !reflect.DeepEqual(got, []int32{3, 4}) {
		t.Fatalf("Row(1) = %v, want [3 4]", got)
	}
	if b.Arity() != 2 {
		t.Fatalf("Arity() = %d, want 2", b.Arity())
	}
}

func TestBlockFromRowsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible row data")
		}
	}()
	BlockFromRows(2, []int32{1, 2, 3})
}

func TestNewBlockPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for arity 0")
		}
	}()
	NewBlock(0)
}

func TestRelationAppendAndCount(t *testing.T) {
	r := NewRelation("t", []string{"x", "y"})
	for i := int32(0); i < 100; i++ {
		r.Append([]int32{i, i * 2})
	}
	if got := r.NumTuples(); got != 100 {
		t.Fatalf("NumTuples() = %d, want 100", got)
	}
	var seen int
	r.ForEach(func(tu []int32) {
		if tu[1] != tu[0]*2 {
			t.Fatalf("unexpected tuple %v", tu)
		}
		seen++
	})
	if seen != 100 {
		t.Fatalf("ForEach visited %d tuples, want 100", seen)
	}
}

func TestRelationAppendRowsSplitsBlocks(t *testing.T) {
	r := NewRelation("t", []string{"x"})
	n := DefaultBlockRows*2 + 7
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	r.AppendRows(rows)
	if got := r.NumTuples(); got != n {
		t.Fatalf("NumTuples() = %d, want %d", got, n)
	}
	if got := len(r.Blocks()); got != 3 {
		t.Fatalf("len(Blocks()) = %d, want 3", got)
	}
}

func TestRelationAppendRelationSharesBlocks(t *testing.T) {
	a := NewRelation("a", []string{"x", "y"})
	bRel := NewRelation("b", []string{"x", "y"})
	a.Append([]int32{1, 1})
	bRel.Append([]int32{2, 2})
	bRel.Append([]int32{3, 3})
	a.AppendRelation(bRel)
	if got := a.NumTuples(); got != 3 {
		t.Fatalf("NumTuples() = %d, want 3", got)
	}
	want := []int32{1, 1, 2, 2, 3, 3}
	if got := a.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedRows() = %v, want %v", got, want)
	}
}

func TestRelationAdoptBlock(t *testing.T) {
	r := NewRelation("t", []string{"x", "y"})
	b := NewBlock(2)
	b.Append([]int32{5, 6})
	r.AdoptBlock(b)
	r.AdoptBlock(NewBlock(2)) // empty: ignored
	if got := r.NumTuples(); got != 1 {
		t.Fatalf("NumTuples() = %d, want 1", got)
	}
}

func TestRelationClear(t *testing.T) {
	r := NewRelation("t", []string{"x"})
	r.Append([]int32{1})
	r.Clear()
	if r.NumTuples() != 0 || len(r.Blocks()) != 0 {
		t.Fatal("Clear() left data behind")
	}
}

func TestRelationSortedRows(t *testing.T) {
	r := NewRelation("t", []string{"x", "y"})
	r.Append([]int32{3, 1})
	r.Append([]int32{1, 2})
	r.Append([]int32{1, 1})
	want := []int32{1, 1, 1, 2, 3, 1}
	if got := r.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedRows() = %v, want %v", got, want)
	}
}

func TestRelationConcurrentAppend(t *testing.T) {
	r := NewRelation("t", []string{"x"})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Append([]int32{int32(w*per + i)})
			}
		}(w)
	}
	wg.Wait()
	if got := r.NumTuples(); got != workers*per {
		t.Fatalf("NumTuples() = %d, want %d", got, workers*per)
	}
	seen := make(map[int32]bool)
	r.ForEach(func(tu []int32) { seen[tu[0]] = true })
	if len(seen) != workers*per {
		t.Fatalf("lost tuples: %d distinct, want %d", len(seen), workers*per)
	}
}

func TestCatalogCreateGetDrop(t *testing.T) {
	c := NewCatalog()
	r, err := c.Create("arc", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("arc", []string{"x"}); err == nil {
		t.Fatal("duplicate Create should fail")
	}
	got, ok := c.Get("arc")
	if !ok || got != r {
		t.Fatal("Get returned wrong relation")
	}
	c.Drop("arc")
	if _, ok := c.Get("arc"); ok {
		t.Fatal("Drop did not remove table")
	}
	c.Drop("absent") // no-op
}

func TestCatalogNamesSorted(t *testing.T) {
	c := NewCatalog()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Create(n, []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := c.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestCatalogAdoptReplaces(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("t", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	repl := NewRelation("t", []string{"x"})
	repl.Append([]int32{7})
	c.Adopt(repl)
	if got := c.MustGet("t").NumTuples(); got != 1 {
		t.Fatalf("after Adopt, NumTuples() = %d, want 1", got)
	}
}

func TestColIndex(t *testing.T) {
	r := NewRelation("t", []string{"x", "y", "z"})
	if got := r.ColIndex("y"); got != 1 {
		t.Fatalf("ColIndex(y) = %d, want 1", got)
	}
	if got := r.ColIndex("w"); got != -1 {
		t.Fatalf("ColIndex(w) = %d, want -1", got)
	}
}

// Property: appending any sequence of tuples preserves count and multiset
// content regardless of how it is chunked into Append/AppendRows calls.
func TestRelationAppendEquivalenceProperty(t *testing.T) {
	f := func(vals []int32, chunked bool) bool {
		// Make even-length row data for arity 2.
		if len(vals)%2 == 1 {
			vals = vals[:len(vals)-1]
		}
		single := NewRelation("s", []string{"x", "y"})
		bulk := NewRelation("b", []string{"x", "y"})
		for i := 0; i+1 < len(vals); i += 2 {
			single.Append([]int32{vals[i], vals[i+1]})
		}
		if chunked && len(vals) >= 4 {
			half := (len(vals) / 4) * 2
			bulk.AppendRows(vals[:half])
			bulk.AppendRows(vals[half:])
		} else {
			bulk.AppendRows(vals)
		}
		return reflect.DeepEqual(single.SortedRows(), bulk.SortedRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatedBytes(t *testing.T) {
	r := NewRelation("t", []string{"x", "y"})
	r.Append([]int32{1, 2})
	r.Append([]int32{3, 4})
	if got := r.EstimatedBytes(); got != 16 {
		t.Fatalf("EstimatedBytes() = %d, want 16", got)
	}
}
