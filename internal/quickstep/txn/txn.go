// Package txn implements the commit semantics behind RecStep's
// Evaluation-as-One-Single-Transaction (EOST) optimization. By default an
// RDBMS treats every mutating query as its own transaction and writes dirty
// pages back after each one; during a fixpoint loop that is pure overhead.
// With EOST on, dirty tables stay in memory until the fixpoint and a single
// final commit persists the results.
package txn

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"recstep/internal/quickstep/storage"
)

// Manager tracks dirty tables and performs (possibly deferred) write-back.
type Manager struct {
	mu      sync.Mutex
	eost    bool
	dir     string
	ownsDir bool
	dirty   map[string]bool

	commits      int
	bytesWritten int64
}

// NewManager creates a manager. With eost true, MaybeCommit is a no-op and
// only FinalCommit writes. dir receives the spill files; when empty a
// temporary directory is created (remove it with Close).
func NewManager(eost bool, dir string) (*Manager, error) {
	m := &Manager{eost: eost, dirty: make(map[string]bool)}
	if dir == "" {
		d, err := os.MkdirTemp("", "recstep-spill-*")
		if err != nil {
			return nil, fmt.Errorf("txn: creating spill dir: %w", err)
		}
		m.dir, m.ownsDir = d, true
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("txn: creating spill dir: %w", err)
		}
		m.dir = dir
	}
	return m, nil
}

// EOST reports whether deferred-commit mode is on.
func (m *Manager) EOST() bool { return m.eost }

// Dir returns the spill directory.
func (m *Manager) Dir() string { return m.dir }

// MarkDirty records that a table changed since the last commit.
func (m *Manager) MarkDirty(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty[name] = true
}

// Forget drops a table from the dirty set (after DROP TABLE).
func (m *Manager) Forget(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.dirty, name)
	// Best-effort removal of a stale spill file.
	_ = os.Remove(m.spillPath(name))
}

// MaybeCommit is invoked after every mutating query. Without EOST it flushes
// all dirty tables to their spill files — the per-query I/O the paper
// eliminates. With EOST it does nothing.
func (m *Manager) MaybeCommit(cat *storage.Catalog) error {
	if m.eost {
		return nil
	}
	return m.flushDirty(cat)
}

// FinalCommit flushes all dirty tables at fixpoint, regardless of mode.
func (m *Manager) FinalCommit(cat *storage.Catalog) error {
	return m.flushDirty(cat)
}

func (m *Manager) flushDirty(cat *storage.Catalog) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.dirty))
	for n := range m.dirty {
		names = append(names, n)
	}
	m.dirty = make(map[string]bool)
	m.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		r, ok := cat.Get(n)
		if !ok {
			continue // dropped since marked dirty
		}
		if err := m.writeTable(r); err != nil {
			return err
		}
	}
	if len(names) > 0 {
		m.mu.Lock()
		m.commits++
		m.mu.Unlock()
	}
	return nil
}

func (m *Manager) writeTable(r *storage.Relation) error {
	path := m.spillPath(r.Name())
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("txn: creating spill file: %w", err)
	}
	if err := storage.WriteRelation(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("txn: closing spill file: %w", err)
	}
	m.mu.Lock()
	m.bytesWritten += int64(12 + 4*r.NumTuples()*r.Arity())
	m.mu.Unlock()
	return nil
}

func (m *Manager) spillPath(name string) string {
	return filepath.Join(m.dir, name+".tbl")
}

// Commits returns how many write-back rounds have run.
func (m *Manager) Commits() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits
}

// BytesWritten returns the total bytes persisted so far.
func (m *Manager) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesWritten
}

// Close removes the spill directory when the manager owns it.
func (m *Manager) Close() error {
	if m.ownsDir {
		return os.RemoveAll(m.dir)
	}
	return nil
}
