package txn

import (
	"os"
	"path/filepath"
	"testing"

	"recstep/internal/quickstep/storage"
)

func makeCat(t *testing.T) (*storage.Catalog, *storage.Relation) {
	t.Helper()
	cat := storage.NewCatalog()
	r, err := cat.Create("tc", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	r.Append([]int32{1, 2})
	return cat, r
}

func TestEOSTDefersWriteback(t *testing.T) {
	cat, _ := makeCat(t)
	m, err := NewManager(true, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.MarkDirty("tc")
	if err := m.MaybeCommit(cat); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 0 || m.BytesWritten() != 0 {
		t.Fatalf("EOST MaybeCommit wrote: commits=%d bytes=%d", m.Commits(), m.BytesWritten())
	}
	if err := m.FinalCommit(cat); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 1 || m.BytesWritten() == 0 {
		t.Fatalf("FinalCommit did not write: commits=%d bytes=%d", m.Commits(), m.BytesWritten())
	}
}

func TestNonEOSTWritesEveryCommit(t *testing.T) {
	cat, r := makeCat(t)
	dir := t.TempDir()
	m, err := NewManager(false, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.MarkDirty("tc")
	if err := m.MaybeCommit(cat); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 1 {
		t.Fatalf("commits = %d, want 1", m.Commits())
	}
	// Round-trip the spill file.
	f, err := os.Open(filepath.Join(dir, "tc.tbl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := storage.ReadRelation(f, "tc")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != r.NumTuples() {
		t.Fatalf("round trip tuples = %d, want %d", back.NumTuples(), r.NumTuples())
	}
	// Clean dirty set: second MaybeCommit is a no-op.
	if err := m.MaybeCommit(cat); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 1 {
		t.Fatalf("no-op commit incremented counter to %d", m.Commits())
	}
}

func TestForgetDroppedTable(t *testing.T) {
	cat, _ := makeCat(t)
	m, err := NewManager(false, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.MarkDirty("tc")
	m.Forget("tc")
	if err := m.MaybeCommit(cat); err != nil {
		t.Fatal(err)
	}
	if m.Commits() != 0 {
		t.Fatal("forgotten table should not be flushed")
	}
	// Dirty table dropped from catalog between mark and commit: skipped.
	m.MarkDirty("ghost")
	if err := m.MaybeCommit(cat); err != nil {
		t.Fatal(err)
	}
}

func TestOwnedTempDirRemoved(t *testing.T) {
	m, err := NewManager(true, "")
	if err != nil {
		t.Fatal(err)
	}
	dir := m.Dir()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("temp dir missing: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("Close did not remove owned temp dir")
	}
}

func TestRelationIORoundTripEmpty(t *testing.T) {
	dir := t.TempDir()
	r := storage.NewRelation("empty", []string{"x"})
	path := filepath.Join(dir, "empty.tbl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteRelation(f, r); err != nil {
		t.Fatal(err)
	}
	f.Close()
	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	back, err := storage.ReadRelation(in, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != 0 || back.Arity() != 1 {
		t.Fatalf("round trip = %d tuples arity %d", back.NumTuples(), back.Arity())
	}
}
