// Package relio reads and writes relations as whitespace-separated integer
// text files (the format the CLI tools exchange, one tuple per line).
package relio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"recstep/internal/quickstep/storage"
)

// ReadTSV parses a relation from tab/space-separated integer lines. Arity
// is inferred from the first line; blank lines and lines starting with '#'
// are skipped.
func ReadTSV(r io.Reader, name string) (*storage.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rel *storage.Relation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		tuple := make([]int32, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("relio: line %d: %v", lineNo, err)
			}
			tuple[i] = int32(v)
		}
		if rel == nil {
			rel = storage.NewRelation(name, storage.NumberedColumns(len(tuple)))
		}
		if len(tuple) != rel.Arity() {
			return nil, fmt.Errorf("relio: line %d: arity %d, expected %d", lineNo, len(tuple), rel.Arity())
		}
		rel.Append(tuple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("relio: %s: no tuples", name)
	}
	return rel, nil
}

// ReadTSVFile reads a relation from a file path.
func ReadTSVFile(path, name string) (*storage.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f, name)
}

// WriteTSV writes the relation sorted, one tab-separated tuple per line.
func WriteTSV(w io.Writer, rel *storage.Relation) error {
	bw := bufio.NewWriter(w)
	arity := rel.Arity()
	rows := rel.SortedRows()
	for off := 0; off < len(rows); off += arity {
		for i := 0; i < arity; i++ {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(rows[off+i]))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTSVFile writes a relation to a file path.
func WriteTSVFile(path string, rel *storage.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Spill-file format: the binary block format the memory manager uses to
// evict cold partitions. Layout mirrors storage's table format — a small
// header (magic, arity, row count) followed by little-endian row-major int32
// data — but reads reconstruct pool-allocated blocks instead of a Relation.
// A CRC-32 (IEEE) of the data bytes trails the file, so on-disk corruption
// (a truncated or bit-flipped partition file) surfaces as a descriptive
// ErrCorrupt instead of silently faulting garbage tuples into the relation.

const spillMagic = uint32(0x5350494C) // "SPIL"

// ErrCorrupt marks a spill file whose contents fail validation — bad magic,
// mismatched arity, truncated data or a checksum mismatch. Corruption is not
// transient: the fault path's retry/backoff loop gives up immediately on it.
var ErrCorrupt = errors.New("corrupt spill file")

// WriteBlocksFile persists a partition's blocks to path.
func WriteBlocksFile(path string, arity int, blocks []*storage.Block) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(f)
	rows := 0
	for _, b := range blocks {
		rows += b.Rows()
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(arity))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(rows))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return 0, err
	}
	// Encode whole blocks into one reusable byte buffer per block: this runs
	// synchronously on the eviction path, where per-value bufio round-trips
	// would dominate.
	var enc []byte
	written := int64(len(hdr))
	sum := crc32.NewIEEE()
	for _, b := range blocks {
		data := b.Data()
		if need := 4 * len(data); cap(enc) < need {
			enc = make([]byte, need)
		}
		enc = enc[:4*len(data)]
		for i, v := range data {
			binary.LittleEndian.PutUint32(enc[i*4:], uint32(v))
		}
		sum.Write(enc)
		if _, err := bw.Write(enc); err != nil {
			f.Close()
			return 0, err
		}
		written += int64(len(enc))
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		f.Close()
		return 0, err
	}
	written += int64(len(tail))
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return written, f.Close()
}

// ReadBlocksFile restores blocks written by WriteBlocksFile, allocating
// their backing arrays through lc under cat (nil lc selects the heap).
func ReadBlocksFile(path string, lc storage.Lifecycle, cat storage.Category, arity int) ([]*storage.Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("relio: %w: reading header of %s: %v", ErrCorrupt, path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != spillMagic {
		return nil, fmt.Errorf("relio: %w: bad magic in %s", ErrCorrupt, path)
	}
	if got := int(binary.LittleEndian.Uint32(hdr[4:])); got != arity {
		return nil, fmt.Errorf("relio: %w: arity %d in %s, want %d", ErrCorrupt, got, path, arity)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[8:]))
	// Restored blocks are released on any validation failure below, so a
	// corrupt file cannot leak pool allocations.
	var blocks []*storage.Block
	fail := func(err error) ([]*storage.Block, error) {
		for _, b := range blocks {
			b.Release()
		}
		return nil, err
	}
	sum := crc32.NewIEEE()
	chunk := make([]int32, arity*storage.DefaultBlockRows)
	raw := make([]byte, 4*len(chunk))
	for read := 0; read < rows; {
		n := storage.DefaultBlockRows
		if rows-read < n {
			n = rows - read
		}
		// One bulk read + decode per block: the fault path blocks a running
		// operator, so per-value reads are not acceptable there.
		rb := raw[:4*n*arity]
		if _, err := io.ReadFull(br, rb); err != nil {
			return fail(fmt.Errorf("relio: %w: truncated data in %s: %v", ErrCorrupt, path, err))
		}
		sum.Write(rb)
		cb := chunk[:n*arity]
		for i := range cb {
			cb[i] = int32(binary.LittleEndian.Uint32(rb[i*4:]))
		}
		b := storage.NewBlockIn(lc, cat, arity, n)
		b.AppendBulk(cb)
		blocks = append(blocks, b)
		read += n
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return fail(fmt.Errorf("relio: %w: missing checksum in %s: %v", ErrCorrupt, path, err))
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum.Sum32() {
		return fail(fmt.Errorf("relio: %w: checksum mismatch in %s (%08x != %08x)", ErrCorrupt, path, got, sum.Sum32()))
	}
	return blocks, nil
}
