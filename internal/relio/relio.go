// Package relio reads and writes relations as whitespace-separated integer
// text files (the format the CLI tools exchange, one tuple per line).
package relio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"recstep/internal/quickstep/storage"
)

// ReadTSV parses a relation from tab/space-separated integer lines. Arity
// is inferred from the first line; blank lines and lines starting with '#'
// are skipped.
func ReadTSV(r io.Reader, name string) (*storage.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rel *storage.Relation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		tuple := make([]int32, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("relio: line %d: %v", lineNo, err)
			}
			tuple[i] = int32(v)
		}
		if rel == nil {
			rel = storage.NewRelation(name, storage.NumberedColumns(len(tuple)))
		}
		if len(tuple) != rel.Arity() {
			return nil, fmt.Errorf("relio: line %d: arity %d, expected %d", lineNo, len(tuple), rel.Arity())
		}
		rel.Append(tuple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("relio: %s: no tuples", name)
	}
	return rel, nil
}

// ReadTSVFile reads a relation from a file path.
func ReadTSVFile(path, name string) (*storage.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f, name)
}

// WriteTSV writes the relation sorted, one tab-separated tuple per line.
func WriteTSV(w io.Writer, rel *storage.Relation) error {
	bw := bufio.NewWriter(w)
	arity := rel.Arity()
	rows := rel.SortedRows()
	for off := 0; off < len(rows); off += arity {
		for i := 0; i < arity; i++ {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(rows[off+i]))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTSVFile writes a relation to a file path.
func WriteTSVFile(path string, rel *storage.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
