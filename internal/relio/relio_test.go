package relio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"recstep/internal/quickstep/storage"
)

func TestReadTSVBasic(t *testing.T) {
	in := "1\t2\n3 4\n# comment\n\n5\t6\n"
	rel, err := ReadTSV(strings.NewReader(in), "arc")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 2 || rel.NumTuples() != 3 {
		t.Fatalf("arity=%d tuples=%d", rel.Arity(), rel.NumTuples())
	}
	want := []int32{1, 2, 3, 4, 5, 6}
	if got := rel.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v", got)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"",            // no tuples
		"1 2\n3\n",    // ragged arity
		"1 x\n",       // non-integer
		"99999999999", // overflow
	}
	for _, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in), "t"); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rel := storage.NewRelation("t", storage.NumberedColumns(3))
	rel.Append([]int32{3, 2, 1})
	rel.Append([]int32{-1, 0, 5})
	var buf bytes.Buffer
	if err := WriteTSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.SortedRows(), rel.SortedRows()) {
		t.Fatal("round trip mismatch")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.tsv")
	rel := storage.NewRelation("t", storage.NumberedColumns(2))
	rel.Append([]int32{7, 8})
	if err := WriteTSVFile(path, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSVFile(path, "t")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != 1 {
		t.Fatalf("tuples = %d", back.NumTuples())
	}
	if _, err := ReadTSVFile(filepath.Join(dir, "missing.tsv"), "t"); err == nil {
		t.Fatal("missing file should error")
	}
}
