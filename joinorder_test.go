package recstep

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"recstep/internal/core"
	"recstep/internal/programs"
)

// The join-ordering pass and the leapfrog WCOJ are physical rewrites only:
// for every benchmark program, every derived relation must be identical to
// the textual-order pairwise reference under every flag combination at every
// radix fan-out.
func TestJoinOrderAndWCOJMatchTextualAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := fuseTestEDBs(name)

			run := func(joinOrder, wcoj bool, parts int) map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.JoinOrder = joinOrder
				opts.WCOJ = wcoj
				opts.Partitions = parts
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			want := run(false, false, 1) // textual pairwise, unpartitioned: the reference
			for _, joinOrder := range []bool{true, false} {
				for _, wcoj := range []bool{true, false} {
					for _, parts := range []int{1, 16, 64} {
						got := run(joinOrder, wcoj, parts)
						for rel, rows := range want {
							if !reflect.DeepEqual(got[rel], rows) {
								t.Fatalf("join-order=%v wcoj=%v parts=%d: %s (%d rows) diverges from textual serial (%d rows)",
									joinOrder, wcoj, parts, rel, len(got[rel])/2, len(rows)/2)
							}
						}
					}
				}
			}
		})
	}
}

// Arms seeded from an empty ∆ must be skipped before planning, the skips
// must surface both per iteration (IterHook) and in the run totals, and the
// chosen orders must be visible per rule arm.
func TestArmSkippingAndPlanStats(t *testing.T) {
	prog := programs.MustParse(programs.CSPA)
	edbs := fuseTestEDBs("cspa")
	opts := core.DefaultOptions()
	opts.Workers = 4
	var hookSkips int64
	opts.IterHook = func(ii core.IterInfo) { hookSkips += int64(ii.ArmsSkipped) }
	res, err := core.New(opts).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ArmsSkipped == 0 {
		t.Fatal("CSPA fixpoint skipped no arms; the empty-∆ filter is not firing")
	}
	if hookSkips != res.Stats.ArmsSkipped {
		t.Fatalf("IterHook saw %d skips, Stats %d", hookSkips, res.Stats.ArmsSkipped)
	}
	if len(res.Stats.JoinOrdersByRule) == 0 {
		t.Fatal("no plan choices recorded")
	}
	var greedy int
	for name, pc := range res.Stats.JoinOrdersByRule {
		if len(pc.Order) != len(pc.Tables) || pc.Count <= 0 {
			t.Fatalf("%s: malformed plan choice %+v", name, pc)
		}
		if pc.Strategy == "greedy" {
			greedy++
		}
	}
	if greedy == 0 {
		t.Fatal("no rule arm recorded the greedy strategy")
	}

	// The textual ablation must record no greedy choices; the empty-∆ arm
	// filter is a bugfix, not an ablation arm, so skipping still happens.
	opts = core.DefaultOptions()
	opts.Workers = 4
	opts.JoinOrder = false
	res, err = core.New(opts).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ArmsSkipped == 0 {
		t.Fatal("empty-∆ arm skipping must stay active under -join-order=false")
	}
	for name, pc := range res.Stats.JoinOrdersByRule {
		if pc.Strategy == "greedy" {
			t.Fatalf("%s chose greedy under -join-order=false", name)
		}
	}
}

// The triangle program must route through the leapfrog join when enabled —
// with zero materialized pairwise intermediates — and fall back to the
// pairwise chain (with a nonzero peak) when disabled, deriving the same
// relations either way.
func TestWCOJSelectedForTriangleProgram(t *testing.T) {
	prog := programs.MustParse(programs.Tri)
	edbs := fuseTestEDBs("tri")

	run := func(wcoj bool) core.Result {
		opts := core.DefaultOptions()
		opts.Workers = 4
		opts.WCOJ = wcoj
		res, err := core.New(opts).Run(prog, edbs)
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	on := run(true)
	off := run(false)

	if len(on.Stats.WCOJRules) == 0 {
		t.Fatal("triangle rule did not route to the leapfrog join")
	}
	for _, name := range on.Stats.WCOJRules {
		if !strings.HasPrefix(name, "tri") {
			t.Fatalf("unexpected wcoj rule %q", name)
		}
	}
	if on.Stats.PeakJoinIntermediate != 0 {
		t.Fatalf("wcoj run materialized a %d-row pairwise intermediate, want none",
			on.Stats.PeakJoinIntermediate)
	}
	if off.Stats.PeakJoinIntermediate == 0 {
		t.Fatal("pairwise run reports zero peak intermediate; the gauge is not measuring")
	}
	if len(off.Stats.WCOJRules) != 0 {
		t.Fatalf("wcoj rules recorded under -wcoj=false: %v", off.Stats.WCOJRules)
	}
	for rel, r := range on.Relations {
		if !reflect.DeepEqual(r.SortedRows(), off.Relations[rel].SortedRows()) {
			t.Fatalf("%s diverges between wcoj and pairwise", rel)
		}
	}
	if on.Relations["tri"].NumTuples() == 0 {
		t.Fatal("no triangles derived; fixture graph too sparse to test anything")
	}
}

// Early termination: an arm whose intermediate comes back empty must not
// change results. The sg program's init rule (arc ⋈ arc with x != y) over a
// graph with no shared parents exercises the empty-intermediate path.
func TestEarlyExitEmptyIntermediate(t *testing.T) {
	// A chain graph: every parent has exactly one child, so sg's seed join
	// arc(p,x) ⋈ arc(p,y), x != y produces rows then filters them all; the
	// recursive arm's intermediates start and stay empty.
	prog := programs.MustParse(programs.SG)
	edbs := fuseTestEDBs("tc") // plain GnP arcs
	for _, joinOrder := range []bool{true, false} {
		opts := core.DefaultOptions()
		opts.Workers = 4
		opts.JoinOrder = joinOrder
		res, err := core.New(opts).Run(prog, edbs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Relations["sg"] == nil {
			t.Fatalf("join-order=%v: sg missing", joinOrder)
		}
	}
}
