package recstep

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/core"
	"recstep/internal/experiments"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// Spilling is a physical rewrite only: with an artificially tiny budget that
// forces cold-partition eviction mid-fixpoint, every program must derive
// exactly the relations an unbudgeted run derives, at every radix fan-out
// (1 keeps the delta pipeline flat until memory pressure itself raises the
// fan-out — see ChooseDeltaPartitionsBudget).
func TestSpillRoundTripAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := experiments.PeakMemEDBs(name, 70)

			run := func(budget int64, parts int) (map[string][]int32, core.Stats) {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.Partitions = parts
				opts.MemBudgetBytes = budget
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out, res.Stats
			}

			want, _ := run(0, 1)
			for _, parts := range []int{1, 16, 64} {
				got, stats := run(1<<14, parts) // 16 KiB: far below every peak
				for rel, rows := range want {
					if !reflect.DeepEqual(got[rel], rows) {
						t.Fatalf("parts=%d budget=16KiB: %s (%d rows) diverges from unbudgeted (%d rows)",
							parts, rel, len(got[rel])/2, len(rows)/2)
					}
				}
				// The recursive graph programs accumulate enough full-relation
				// state that a 16 KiB budget must force eviction traffic.
				if (name == "tc" || name == "sg" || name == "gtc") && parts >= 16 {
					if stats.Mem.Spills == 0 || stats.Mem.Faults == 0 {
						t.Fatalf("parts=%d: tiny budget produced no spill traffic (spills=%d faults=%d)",
							parts, stats.Mem.Spills, stats.Mem.Faults)
					}
				}
			}
		})
	}
}

// cycleGraph returns a directed n-cycle — the long-diameter shape whose
// transitive closure dwarfs any single iteration's working set, so the
// budget (not the per-iteration intermediates) governs the peak.
func cycleGraph(n int) *storage.Relation {
	arc := storage.NewRelation("arc", storage.NumberedColumns(2))
	rows := make([]int32, 0, 2*n)
	for i := 0; i < n; i++ {
		rows = append(rows, int32(i), int32((i+1)%n))
	}
	arc.AppendRows(rows)
	return arc
}

// The memory-budget acceptance check: with -mem-budget set well below the
// unbudgeted peak, TC on the largest bundled graph completes with identical
// results, the recorded peak of live pool bytes stays within the budget, and
// the spill/fault counters are nonzero.
func TestBudgetedTCPeakWithinBudget(t *testing.T) {
	arc := cycleGraph(300)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	base := core.DefaultOptions()
	base.Workers = 4
	base.Partitions = 16
	ref, err := core.New(base).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Mem.PeakLive == 0 {
		t.Fatal("no pool accounting recorded")
	}

	opts := base
	opts.MemBudgetBytes = ref.Stats.Mem.PeakLive * 6 / 10
	res, err := core.New(opts).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Relations["tc"].SortedRows(), ref.Relations["tc"].SortedRows()) {
		t.Fatal("budgeted run derived different tuples")
	}
	m := res.Stats.Mem
	if m.Spills == 0 || m.Faults == 0 {
		t.Fatalf("budget below peak but no spill traffic: spills=%d faults=%d", m.Spills, m.Faults)
	}
	if m.PeakLive > opts.MemBudgetBytes && !raceEnabled {
		// Under -race the detector's scheduling distortion widens the
		// windows in which the reclaimer cannot evict; the strict bound is
		// asserted only on the normal build.
		t.Fatalf("peak live pool bytes %d exceed budget %d (unbudgeted peak %d)",
			m.PeakLive, opts.MemBudgetBytes, ref.Stats.Mem.PeakLive)
	}
	t.Logf("unbudgeted peak %d, budget %d, budgeted peak %d, spills %d, faults %d",
		ref.Stats.Mem.PeakLive, opts.MemBudgetBytes, m.PeakLive, m.Spills, m.Faults)
}

// The per-iteration memory snapshot must be visible through IterHook so
// experiments can attribute footprint to fixpoint phases, and headroom
// shrinkage must be reflected in the engine's chosen fan-outs without
// changing results (exercised above); here we pin the observability wiring.
func TestIterHookReportsMemorySnapshot(t *testing.T) {
	arc := cycleGraph(120)
	prog := programs.MustParse(programs.TC)
	opts := core.DefaultOptions()
	opts.Workers = 2
	opts.Partitions = 16
	seen := 0
	var lastLive int64
	opts.IterHook = func(ii core.IterInfo) {
		seen++
		if ii.Mem.LiveTotal > 0 {
			lastLive = ii.Mem.LiveTotal
		}
	}
	res, err := core.New(opts).Run(prog, map[string]*storage.Relation{"arc": arc})
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 || lastLive == 0 {
		t.Fatalf("IterHook memory snapshots missing (hooks=%d lastLive=%d)", seen, lastLive)
	}
	if res.Stats.Mem.PeakLive < lastLive {
		t.Fatalf("final peak %d below per-iteration live %d", res.Stats.Mem.PeakLive, lastLive)
	}
	if res.Stats.Mem.PoolHits == 0 {
		t.Fatal("block recycling never hit the pool during a 120-iteration fixpoint")
	}
}
