package recstep

import (
	"reflect"
	"testing"

	"recstep/internal/core"
	"recstep/internal/experiments"
	"recstep/internal/graphs"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// Every ablation configuration (UIE/OOF/DSD/EOST/Dedup toggles) must produce
// identical relation contents whether hash builds run radix-partitioned or
// through the serial shared-table path — partitioning is a physical layout
// choice, never a semantic one.
func TestAblationConfigsPartitionedMatchesSerial(t *testing.T) {
	arc := graphs.GnP(120, 0.05, 11)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	run := func(opts core.Options) []int32 {
		t.Helper()
		if !opts.DisableIO {
			opts.SpillDir = t.TempDir()
		}
		res, err := core.New(opts).Run(prog, edbs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Relations["tc"].SortedRows()
	}

	for _, cfg := range experiments.AblationConfigs(4) {
		t.Run(cfg.Name, func(t *testing.T) {
			serial := cfg.Opts
			serial.BuildSerial = true
			partitioned := cfg.Opts
			// Force partitioning even on this small workload so the radix
			// path actually executes.
			partitioned.Partitions = 16
			got, want := run(partitioned), run(serial)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("partitioned tc (%d rows) diverges from serial (%d rows)", len(got)/2, len(want)/2)
			}
		})
	}
}

// The partitioning knob must also hold for programs exercising set
// difference with multi-column keys, negation (anti join) and aggregation.
func TestPartitionedMatchesSerialAcrossPrograms(t *testing.T) {
	arc := graphs.GnP(80, 0.05, 7)
	for _, name := range []string{"sg", "ntc", "gtc"} {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := map[string]*storage.Relation{"arc": arc}
			serial := core.DefaultOptions()
			serial.BuildSerial = true
			partitioned := core.DefaultOptions()
			partitioned.Partitions = 16
			a, err := core.New(partitioned).Run(prog, edbs)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.New(serial).Run(prog, edbs)
			if err != nil {
				t.Fatal(err)
			}
			for rel, pr := range a.Relations {
				if !reflect.DeepEqual(pr.SortedRows(), b.Relations[rel].SortedRows()) {
					t.Fatalf("%s: partitioned %s diverges from serial", name, rel)
				}
			}
		})
	}
}
