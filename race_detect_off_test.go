//go:build !race

package recstep

// raceEnabled reports whether the race detector build tag is active; the
// strict peak-vs-budget assertion is skipped under -race, whose scheduler
// instrumentation widens the windows in which the reclaimer cannot acquire a
// contended relation.
const raceEnabled = false
