//go:build race

package recstep

// raceEnabled reports whether the race detector build tag is active.
const raceEnabled = true
