// Package recstep is a from-scratch Go implementation of RecStep — the
// general-purpose parallel in-memory Datalog engine of "Scaling-Up
// In-Memory Datalog Processing: Observations and Techniques" (VLDB 2019) —
// together with the QuickStep-like relational substrate it runs on.
//
// The engine evaluates Datalog extended with stratified negation and
// aggregation (including MIN/MAX inside recursion) using semi-naive,
// stratified bottom-up evaluation compiled to SQL over a block-parallel
// in-memory RDBMS. All of the paper's optimizations are implemented and
// individually toggleable: unified IDB evaluation (UIE), optimization on
// the fly (OOF), dynamic set difference (DSD), evaluation as one single
// transaction (EOST) and CCK-GSCHT fast deduplication, plus the parallel
// bit-matrix evaluation (PBME) fast path for dense-graph transitive closure
// and same generation.
//
// Quickstart:
//
//	res, err := recstep.RunSource(`
//	    arc(1, 2). arc(2, 3).
//	    tc(x, y) :- arc(x, y).
//	    tc(x, y) :- tc(x, z), arc(z, y).
//	`, nil, recstep.DefaultOptions())
//	// res.Relations["tc"] now holds the closure.
package recstep

import (
	"fmt"

	"recstep/internal/bitmatrix"
	"recstep/internal/core"
	"recstep/internal/datalog/ast"
	"recstep/internal/datalog/parser"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
)

// Relation is a fixed-arity bag of int32 tuples — the engine's input and
// output representation.
type Relation = storage.Relation

// NewRelation creates an empty input relation with the given arity.
// Attribute names are generated (c0, c1, …); the engine addresses columns
// positionally.
func NewRelation(name string, arity int) *Relation {
	return storage.NewRelation(name, storage.NumberedColumns(arity))
}

// Program is a parsed Datalog program.
type Program struct {
	ast *ast.Program
}

// Parse parses Datalog source text.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{ast: p}, nil
}

// String renders the program back to Datalog syntax.
func (p *Program) String() string { return p.ast.String() }

// DedupStrategy selects the deduplication implementation.
type DedupStrategy = exec.DedupStrategy

// Deduplication strategies (FAST-DEDUP and its ablation baselines).
const (
	DedupGSCHT   = exec.DedupGSCHT
	DedupLockMap = exec.DedupLockMap
	DedupSort    = exec.DedupSort
)

// StatsMode selects how much statistical data per-iteration ANALYZE collects.
type StatsMode = stats.Mode

// OOF statistics modes.
const (
	StatsNone      = stats.ModeNone
	StatsSelective = stats.ModeSelective
	StatsFull      = stats.ModeFull
)

// DSDMode selects the set-difference policy.
type DSDMode = core.DSDMode

// Set-difference policies.
const (
	DSDDynamic    = core.DSDDynamic
	DSDAlwaysOPSD = core.DSDAlwaysOPSD
	DSDAlwaysTPSD = core.DSDAlwaysTPSD
)

// Options configures evaluation; see the paper's Section 5 for what each
// optimization does. DefaultOptions enables everything.
type Options = core.Options

// DefaultOptions returns the all-optimizations-on configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Stats summarizes one evaluation.
type Stats = core.Stats

// Result holds the final IDB relations and run statistics.
type Result = core.Result

// Engine evaluates Datalog programs.
type Engine struct {
	inner *core.Engine
}

// New creates an engine with the given options.
func New(opts Options) *Engine {
	return &Engine{inner: core.New(opts)}
}

// Run evaluates a parsed program. edbs maps EDB predicate names to input
// relations; inline facts in the program are added on top.
func (e *Engine) Run(p *Program, edbs map[string]*Relation) (*Result, error) {
	if p == nil || p.ast == nil {
		return nil, fmt.Errorf("recstep: nil program")
	}
	return e.inner.Run(p.ast, edbs)
}

// RunSource parses and evaluates Datalog source in one call.
func RunSource(src string, edbs map[string]*Relation, opts Options) (*Result, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return New(opts).Run(p, edbs)
}

// TransitiveClosurePBME evaluates transitive closure with the parallel
// bit-matrix fast path (Section 5.3, Algorithm 2). The arc relation's
// active domain must be {0..n-1}. threads ≤ 0 selects GOMAXPROCS.
func TransitiveClosurePBME(arc *Relation, n, threads int) (*Relation, error) {
	m, err := bitmatrix.FromEdges(arc, n)
	if err != nil {
		return nil, err
	}
	return bitmatrix.TransitiveClosure(m, threads).ToRelation("tc"), nil
}

// SameGenerationPBME evaluates same generation with the bit-matrix fast
// path (Algorithm 3). coordinate enables the work-order re-balancing of
// Figure 7.
func SameGenerationPBME(arc *Relation, n, threads int, coordinate bool) (*Relation, error) {
	m, err := bitmatrix.FromEdges(arc, n)
	if err != nil {
		return nil, err
	}
	sg := bitmatrix.SameGeneration(m, bitmatrix.SGOptions{Threads: threads, Coordinate: coordinate})
	return sg.ToRelation("sg"), nil
}

// PBMEFits reports whether an n-vertex bit matrix fits the memory budget —
// the guard RecStep applies before choosing the PBME path.
func PBMEFits(n int, budgetBytes int64) bool {
	return bitmatrix.FitsMemory(n, budgetBytes)
}
