package recstep

import (
	"reflect"
	"testing"
)

func TestRunSourceQuickstart(t *testing.T) {
	res, err := RunSource(`
		arc(1, 2). arc(2, 3).
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 1, 3, 2, 3}
	if got := res.Relations["tc"].SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tc = %v, want %v", got, want)
	}
	if res.Stats.Iterations == 0 {
		t.Fatal("stats missing")
	}
}

func TestRunWithExternalEDB(t *testing.T) {
	arc := NewRelation("arc", 2)
	arc.Append([]int32{0, 1})
	arc.Append([]int32{1, 2})
	p, err := Parse(`
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(DefaultOptions()).Run(p, map[string]*Relation{"arc": arc})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relations["tc"].NumTuples(); got != 3 {
		t.Fatalf("tc tuples = %d, want 3", got)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	if _, err := Parse("tc(x y) :- arc(x, y)."); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := RunSource("garbage(", nil, DefaultOptions()); err == nil {
		t.Fatal("expected error from RunSource")
	}
}

func TestNilProgramRejected(t *testing.T) {
	if _, err := New(DefaultOptions()).Run(nil, nil); err == nil {
		t.Fatal("expected nil-program error")
	}
}

func TestProgramString(t *testing.T) {
	p, err := Parse("tc(x, y) :- arc(x, y).")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestPBMEPathsMatchEngine(t *testing.T) {
	arc := NewRelation("arc", 2)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}, {0, 3}} {
		arc.Append(e[:])
	}
	engineRes, err := RunSource(`
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`, map[string]*Relation{"arc": arc}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pbme, err := TransitiveClosurePBME(arc, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pbme.SortedRows(), engineRes.Relations["tc"].SortedRows()) {
		t.Fatal("PBME TC disagrees with the engine")
	}

	sgEngine, err := RunSource(`
		sg(x, y) :- arc(p, x), arc(p, y), x != y.
		sg(x, y) :- arc(a, x), sg(a, b), arc(b, y).
	`, map[string]*Relation{"arc": arc}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, coord := range []bool{false, true} {
		sgPBME, err := SameGenerationPBME(arc, 4, 2, coord)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sgPBME.SortedRows(), sgEngine.Relations["sg"].SortedRows()) {
			t.Fatalf("PBME SG (coord=%t) disagrees with the engine", coord)
		}
	}
}

func TestPBMEFits(t *testing.T) {
	if !PBMEFits(100, 1<<20) || PBMEFits(1<<20, 1<<20) {
		t.Fatal("PBMEFits thresholds wrong")
	}
}

func TestPBMEDomainError(t *testing.T) {
	arc := NewRelation("arc", 2)
	arc.Append([]int32{0, 100})
	if _, err := TransitiveClosurePBME(arc, 4, 1); err == nil {
		t.Fatal("expected domain error")
	}
}
