// Command checkdocs fails (exit 1) when any Go package in the repository
// lacks a package-level doc comment. CI runs it so every package keeps the
// godoc entry point the architecture documentation links into: a package
// whose role cannot be stated in a doc comment is a package whose role the
// next contributor has to reverse-engineer.
//
// A package passes when at least one of its files attaches a doc comment to
// the package clause ("// Package foo ..." for libraries, "// Command foo
// ..." for main packages — the conventional godoc forms, though any
// non-empty doc comment counts). Test files can carry the comment for
// white-box test helpers, but external-test packages ("foo_test") are not
// required to have one.
//
// It also gates the benchmark workload suite: every programs/*.datalog file
// must be documented in README.md's benchmark-programs table (referenced as
// `name`), so a new benchmark cannot ship without a row saying what it
// computes and what it exercises.
//
// Finally it gates the issue archive: ISSUE.md is rewritten every PR, so its
// history only survives as snapshots under docs/issues/ISSUE-NN.md. The
// snapshots must be contiguous from ISSUE-01, each must open with its own
// "# ISSUE N" heading, and the newest must be byte-identical to the working
// tree's ISSUE.md — archiving the current issue is part of landing it.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	// pkgDoc maps a package's (directory, name) to whether any of its files
	// carries a package doc comment.
	type pkgKey struct{ dir, name string }
	pkgDoc := make(map[pkgKey]bool)

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		name := f.Name.Name
		if strings.HasSuffix(name, "_test") {
			return nil
		}
		key := pkgKey{dir: filepath.Dir(path), name: name}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			pkgDoc[key] = true
		} else if _, seen := pkgDoc[key]; !seen {
			pkgDoc[key] = false
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}

	var missing []string
	for key, ok := range pkgDoc {
		if !ok {
			missing = append(missing, fmt.Sprintf("%s (package %s)", key.dir, key.name))
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "checkdocs: packages missing a package-level doc comment:")
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}

	undocumented, total, err := checkPrograms(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	if len(undocumented) > 0 {
		fmt.Fprintln(os.Stderr, "checkdocs: benchmark programs missing a README.md table row (reference them as `name`):")
		for _, m := range undocumented {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
	archiveProblems, snapshots, err := checkIssueArchive(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	if len(archiveProblems) > 0 {
		fmt.Fprintln(os.Stderr, "checkdocs: issue archive (docs/issues/) out of date:")
		for _, m := range archiveProblems {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
	fmt.Printf("checkdocs: %d packages documented, %d benchmark programs documented, %d issue snapshots archived\n",
		len(pkgDoc), total, snapshots)
}

// checkPrograms verifies every programs/*.datalog benchmark appears (as a
// `name` code span) in README.md. The andersen.datalog file is registered
// under the paper's short name "aa" (see internal/programs).
func checkPrograms(root string) (undocumented []string, total int, err error) {
	entries, err := os.ReadDir(filepath.Join(root, "programs"))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return nil, 0, err
	}
	for _, e := range entries {
		file := e.Name()
		if e.IsDir() || !strings.HasSuffix(file, ".datalog") {
			continue
		}
		total++
		name := strings.TrimSuffix(file, ".datalog")
		if name == "andersen" {
			name = "aa"
		}
		if !strings.Contains(string(readme), "`"+name+"`") {
			undocumented = append(undocumented, fmt.Sprintf("programs/%s (no `%s` in README.md)", file, name))
		}
	}
	sort.Strings(undocumented)
	return undocumented, total, nil
}

// checkIssueArchive verifies docs/issues/ holds a contiguous ISSUE-NN.md
// snapshot series starting at 01, that each snapshot opens with its own
// "# ISSUE N" heading, and that the newest snapshot is byte-identical to the
// repository's current ISSUE.md (when one exists) — i.e. the archive was
// refreshed when the issue was.
func checkIssueArchive(root string) (problems []string, snapshots int, err error) {
	dir := filepath.Join(root, "docs", "issues")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		if _, serr := os.Stat(filepath.Join(root, "ISSUE.md")); serr == nil {
			return []string{"docs/issues/ does not exist; archive ISSUE.md as docs/issues/ISSUE-01.md"}, 0, nil
		}
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	nums := make(map[int]string)
	highest := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ISSUE-") || !strings.HasSuffix(name, ".md") {
			continue
		}
		var n int
		if _, serr := fmt.Sscanf(name, "ISSUE-%d.md", &n); serr != nil || n < 1 {
			problems = append(problems, fmt.Sprintf("docs/issues/%s: name is not ISSUE-NN.md", name))
			continue
		}
		nums[n] = name
		if n > highest {
			highest = n
		}
	}
	for n := 1; n <= highest; n++ {
		name, ok := nums[n]
		if !ok {
			problems = append(problems, fmt.Sprintf("gap in the series: docs/issues/ISSUE-%02d.md missing", n))
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			return nil, 0, rerr
		}
		first, _, _ := strings.Cut(string(data), "\n")
		if !strings.HasPrefix(first, fmt.Sprintf("# ISSUE %d ", n)) && first != fmt.Sprintf("# ISSUE %d", n) {
			problems = append(problems, fmt.Sprintf("docs/issues/%s: first line %q does not declare ISSUE %d", name, first, n))
		}
		if n == highest {
			current, cerr := os.ReadFile(filepath.Join(root, "ISSUE.md"))
			if cerr == nil && string(current) != string(data) {
				problems = append(problems, fmt.Sprintf("docs/issues/%s differs from ISSUE.md: re-archive the current issue", name))
			}
		}
	}
	if highest == 0 {
		if _, serr := os.Stat(filepath.Join(root, "ISSUE.md")); serr == nil {
			problems = append(problems, "docs/issues/ holds no ISSUE-NN.md snapshots; archive ISSUE.md as docs/issues/ISSUE-01.md")
		}
	}
	sort.Strings(problems)
	return problems, highest, nil
}
