package recstep

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/core"
	"recstep/internal/datalog/querygen"
	"recstep/internal/experiments"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/storage"
)

// Secondary carried views are a physical rewrite only: for every benchmark
// program, every relation it derives must be identical with secondary
// carrying on and off, at every radix fan-out. The staged serial run is the
// reference, exactly as in the fused-vs-staged and carried-vs-rescatter
// equivalence suites.
func TestSecondaryCarryMatchesFallbackAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := fuseTestEDBs(name)

			run := func(secondary bool, parts int) map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.SecondaryCarry = secondary
				opts.Partitions = parts
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			staged := func() map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.FuseDelta = false
				opts.CarryJoinParts = false
				opts.SecondaryCarry = false
				opts.Partitions = 1
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			want := staged()
			for _, secondary := range []bool{true, false} {
				for _, parts := range []int{1, 16, 64} {
					got := run(secondary, parts)
					for rel, rows := range want {
						if !reflect.DeepEqual(got[rel], rows) {
							t.Fatalf("secondary=%v parts=%d: %s (%d rows) diverges from staged serial (%d rows)",
								secondary, parts, rel, len(got[rel]), len(rows))
						}
					}
				}
			}
		})
	}
}

// CSPA is the conflicting-keyset program: valueFlow is joined on column 0
// by some recursive rules and column 1 by others. With secondary carrying
// every carried-capable relation must reach zero per-iteration build
// scatters — the whole-tuple fallback keeps paying them every iteration.
func TestSecondaryCarryZeroRecurringBuildScattersCSPA(t *testing.T) {
	prog := programs.MustParse(programs.CSPA)
	edbs := pa.CSPASized(pa.CSPAConfig{Vars: 120, AssignPer: 5, DerefRatio: 3, Seed: 13})

	run := func(secondary bool) core.Stats {
		opts := core.DefaultOptions()
		opts.Workers = 4
		opts.Partitions = 16
		opts.SecondaryCarry = secondary
		res, err := core.New(opts).Run(prog, edbs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}

	withSec := run(true)
	if got := experiments.RecurringBuildScatters(withSec.JoinBuildsByKeyset); got != 0 {
		t.Fatalf("secondary carry left %d recurring carried build scatters (detail %v)",
			got, withSec.JoinBuildsByKeyset)
	}
	if withSec.SecondaryScattered == 0 {
		t.Fatal("no tuples were routed into secondary views; the dual route is not running")
	}
	// Both conflicting keysets of valueFlow must be served in place.
	for _, key := range []string{"valueFlow[0]", "valueFlow[1]", "valueFlow" + querygen.DeltaSuffix + "[0]", "valueFlow" + querygen.DeltaSuffix + "[1]"} {
		bc, ok := withSec.JoinBuildsByKeyset[key]
		if !ok {
			continue // the optimizer may not pick this side every run
		}
		if bc.Scatters > 0 {
			t.Fatalf("%s paid %d build scatters under secondary carry", key, bc.Scatters)
		}
	}

	fallback := run(false)
	if fallback.SecondaryScattered != 0 {
		t.Fatal("ablation run still routed tuples into secondary views")
	}
	if got := experiments.RecurringBuildScatters(fallback.JoinBuildsByKeyset); got == 0 {
		t.Fatal("whole-tuple fallback reports zero recurring build scatters; the counter is not measuring")
	}
}

// Eviction order under a memory budget: secondary carried views — pure
// redundancy — must be dropped before any primary partition spills to disk,
// and the drop must leave the relation's contents intact.
func TestSecondaryViewsEvictBeforePrimarySpill(t *testing.T) {
	rows := make([]int32, 0, 2*100000)
	for i := int32(0); i < 100000; i++ {
		rows = append(rows, i, i*7)
	}
	build := func(db *quickstep.Database) *storage.Relation {
		r := storage.NewRelation("r", storage.NumberedColumns(2))
		r.SetLifecycle(db.Alloc(), storage.CatIDB)
		r.AppendRows(rows)
		if err := db.Install(r); err != nil {
			t.Fatal(err)
		}
		db.MarkSpillable("r")
		exec.PartitionRelationCarried(db.Pool(), r, []int{1}, 16)
		exec.EnsureSecondaryCarry(db.Pool(), r, []int{0}, 16)
		// Settle: the carry promotion retired the original flat blocks;
		// recycle them so the live gauge reads carried + secondary only.
		r.ReclaimRetired()
		return r
	}

	// Calibrate: measure the live footprint with and without the secondary
	// view, so the budget can be placed between them.
	// One worker keeps the scatter's block layout — and with it the byte
	// gauges — identical between the calibration and test instances; a
	// multi-worker scatter splits rows across worker-private blocks by
	// scheduling, which shifts pool-class padding run to run.
	cal, err := quickstep.Open(quickstep.Options{Workers: 1, DisableIO: true, CarryJoinParts: true, SecondaryCarry: true})
	if err != nil {
		t.Fatal(err)
	}
	calRel := build(cal)
	withSec := cal.MemSnapshot().LiveTotal
	calRel.DropSecondaryView()
	calRel.ReclaimRetired()
	withoutSec := cal.MemSnapshot().LiveTotal
	cal.Close()
	if withSec <= withoutSec {
		t.Fatalf("calibration: %d with secondary ≤ %d without", withSec, withoutSec)
	}

	budget := (withSec + withoutSec) / 2
	db, err := quickstep.Open(quickstep.Options{
		Workers: 1, DisableIO: true, CarryJoinParts: true, SecondaryCarry: true,
		MemBudgetBytes: budget, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r := build(db)
	want := r.SortedRows()
	if !db.Mem().OverBudget() {
		t.Fatalf("setup not over budget: live %d, budget %d", db.MemSnapshot().LiveTotal, budget)
	}

	// First epoch over budget: the secondary view goes, nothing spills.
	db.EndIteration()
	snap := db.MemSnapshot()
	if snap.SecondaryDrops == 0 {
		t.Fatal("no secondary view was dropped")
	}
	if snap.Spills != 0 {
		t.Fatalf("%d partitions spilled while a secondary view was still droppable", snap.Spills)
	}
	if _, ok := r.SecondaryPartitioning(); ok {
		t.Fatal("secondary view survived the over-budget epoch")
	}
	if snap.LiveTotal > budget {
		t.Fatalf("dropping the secondary did not reach the budget: live %d > %d", snap.LiveTotal, budget)
	}

	// Push over budget again with no secondary left: now the primary's cold
	// partitions must spill.
	extra := storage.NewRelation("extra", storage.NumberedColumns(2))
	extra.SetLifecycle(db.Alloc(), storage.CatIntermediate)
	extra.AppendRows(rows)
	db.EndIteration()
	snap = db.MemSnapshot()
	if snap.Spills == 0 {
		t.Fatal("over budget with no secondary left, but nothing spilled")
	}
	if got := r.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatal("relation contents diverged across eviction")
	}
	extra.Release()
}

// A budgeted CSPA run exercises the whole pressure path — dual-route delta
// steps, secondary drops at epoch boundaries, the ensure-gate refusing
// rebuilds without headroom — and must still converge to the unbudgeted
// result.
func TestSecondaryCarryBudgetedEquivalence(t *testing.T) {
	prog := programs.MustParse(programs.CSPA)
	edbs := pa.CSPASized(pa.CSPAConfig{Vars: 300, AssignPer: 13, DerefRatio: 3, Seed: 13})

	free := core.DefaultOptions()
	free.Workers = 4
	free.Partitions = 16
	ref, err := core.New(free).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}

	tight := free
	tight.MemBudgetBytes = 1 << 20
	tight.SpillDir = t.TempDir()
	got, err := core.New(tight).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	for rel, want := range ref.Relations {
		if !reflect.DeepEqual(got.Relations[rel].SortedRows(), want.SortedRows()) {
			t.Fatalf("budgeted run diverges on %s", rel)
		}
	}
	if got.Stats.Mem.SecondaryDrops == 0 {
		t.Fatal("budget never forced a secondary drop; the pressure path is untested at this scale")
	}
	t.Logf("secondaryDrops=%d spills=%d faults=%d", got.Stats.Mem.SecondaryDrops, got.Stats.Mem.Spills, got.Stats.Mem.Faults)
}
